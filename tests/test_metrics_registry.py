"""The deterministic metrics layer (docs/OBSERVABILITY.md).

Three contracts under test:

1. **Merge laws** — :class:`Histogram` snapshots merge order-independently
   and bit-identically (multiset union of exact samples), counters add,
   gauges take the max; the laws are what make fan-out aggregation match
   a serial run exactly.
2. **Arming is free** — a run with a :class:`MetricsRegistry` attached
   makes byte-for-byte the same admission decisions and serializes
   byte-for-byte the same legacy ``RunResult`` JSON as an unarmed run;
   the snapshot rides in a separate, optional field.
3. **Worker invariance** — folding per-cell snapshots from ``run_cells``
   gives the same exposition text at any worker count.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    RunResult,
    Scenario,
    Session,
    run_scenario,
)
from repro.cli import main as cli_main
from repro.experiments import run_cells


def _scenario(seed=7, distributed=False, duration=15.0):
    builder = (
        Scenario.builder().random_workload(seed=2008)
        .duration(duration).seed(seed)
    )
    builder = builder.distributed() if distributed else builder.combo("J_J_J")
    return builder.build()


def _metrics_exposition_cell(seed: int, distributed: bool) -> str:
    """Module-level (picklable) run_cells cell: one armed run's text."""
    result = run_scenario(_scenario(seed, distributed), with_metrics=True)
    assert result.metrics_snapshot is not None
    return result.metrics_snapshot.expose()


_samples = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
              allow_infinity=False),
    max_size=40,
)


# ----------------------------------------------------------------------
# Histogram merge laws
# ----------------------------------------------------------------------
class TestHistogramMerge:
    @staticmethod
    def _snap(values) -> HistogramSnapshot:
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        return histogram.snapshot()

    @given(_samples, _samples, _samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_order_independent_and_bit_identical(self, a, b, c):
        left = self._snap(a).merge(self._snap(b)).merge(self._snap(c))
        right = self._snap(c).merge(self._snap(a).merge(self._snap(b)))
        swapped = self._snap(b).merge(self._snap(c)).merge(self._snap(a))
        assert left == right == swapped
        assert (
            json.dumps(left.to_json())
            == json.dumps(right.to_json())
            == json.dumps(swapped.to_json())
        )

    @given(_samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_is_identity(self, values):
        snap = self._snap(values)
        assert snap.merge(self._snap([])) == snap
        assert self._snap([]).merge(snap) == snap

    @given(_samples)
    @settings(max_examples=50, deadline=None)
    def test_quantiles_are_observed_samples(self, values):
        snap = self._snap(values)
        if not values:
            with pytest.raises(ValueError):
                snap.quantile(0.99)
            return
        ordered = sorted(values)
        assert snap.quantile(0.0) == ordered[0]
        assert snap.quantile(1.0) == ordered[-1]
        for q in (0.5, 0.95, 0.99):
            assert snap.quantile(q) in values
        counts = snap.bucket_counts()
        assert counts[-1] == len(values)
        assert list(counts) == sorted(counts)

    def test_json_round_trip(self):
        snap = self._snap([0.0012, 0.5, 3.25])
        again = HistogramSnapshot.from_json(snap.to_json())
        assert again == snap

    def test_rejects_non_finite_and_bucket_mismatch(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.observe(float("nan"))
        with pytest.raises(ValueError):
            histogram.observe(float("inf"))
        other = Histogram(buckets=(1.0, 2.0))
        other.observe(0.5)
        with pytest.raises(ValueError):
            histogram.snapshot().merge(other.snapshot())


# ----------------------------------------------------------------------
# Registry and snapshot semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_and_exposition(self):
        registry = MetricsRegistry()
        decisions = registry.counter(
            "repro_admission_decisions_total", "admission outcomes",
            labelnames=("outcome",),
        )
        decisions.labels("accept").inc()
        decisions.labels("accept").inc()
        decisions.labels("reject").inc()
        depth = registry.gauge("repro_queue_depth", "queue high-water")
        depth.labels().set(4.0)
        latency = registry.histogram(
            "repro_decision_seconds", "decision latency",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        latency.labels().observe(0.002)
        text = registry.expose()
        assert '# TYPE repro_admission_decisions_total counter' in text
        assert 'repro_admission_decisions_total{outcome="accept"} 2' in text
        assert 'repro_admission_decisions_total{outcome="reject"} 1' in text
        assert "repro_queue_depth 4" in text
        assert '# TYPE repro_decision_seconds histogram' in text
        assert 'repro_decision_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_decision_seconds_count 1" in text
        assert text.endswith("\n")

    def test_schema_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", "things", labelnames=("kind",))
        with pytest.raises(ValueError):
            registry.counter("repro_things_total", "things")
        with pytest.raises(ValueError):
            registry.gauge("repro_things_total", "things", labelnames=("kind",))

    def test_snapshot_merge_per_kind(self):
        def build(count, gauge_value, latency):
            registry = MetricsRegistry()
            registry.counter("repro_events_total", "events").labels().inc(count)
            registry.gauge("repro_depth", "depth").labels().set(gauge_value)
            registry.histogram(
                "repro_lat_seconds", "lat"
            ).labels().observe(latency)
            return registry.snapshot()

        one = build(3.0, 2.0, 0.01)
        two = build(4.0, 5.0, 0.02)
        merged = one.merge(two)
        # Integral by construction (counters add exact event counts,
        # gauges take the max), so integer equality is safe here.
        assert int(dict(merged.family("repro_events_total").series)[()]) == 7
        assert int(dict(merged.family("repro_depth").series)[()]) == 5
        histogram = dict(merged.family("repro_lat_seconds").series)[()]
        assert histogram.count == 2
        # Commutative: both merge orders expose identical text.
        assert merged.expose() == two.merge(one).expose()

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_events_total", "events", labelnames=("node",)
        ).labels('dre "1"\\n').inc(2.0)
        snap = registry.snapshot()
        again = MetricsSnapshot.from_json(snap.to_json())
        assert again == snap
        assert again.expose() == snap.expose()


# ----------------------------------------------------------------------
# Arming is free: decision and serialization parity
# ----------------------------------------------------------------------
def _legacy_json(result) -> str:
    data = result.to_json()
    data.pop("metrics_snapshot", None)
    return json.dumps(data, sort_keys=True)


class TestArmedParity:
    @pytest.mark.parametrize("distributed", [False, True])
    def test_armed_run_is_bit_identical(self, distributed):
        scenario = _scenario(distributed=distributed)
        plain = Session(scenario).run()
        armed_registry = MetricsRegistry()
        armed = Session(scenario, metrics=armed_registry).run()
        assert "metrics_snapshot" not in plain.to_json()
        assert _legacy_json(armed) == _legacy_json(plain)
        assert armed.metrics_snapshot is not None
        assert armed.metrics_snapshot.family("repro_admission_decisions_total")

    def test_via_dance_armed_parity(self):
        scenario = _scenario()
        plain = Session(scenario, via_dance=True).run()
        armed = Session(
            scenario, via_dance=True, metrics=MetricsRegistry()
        ).run()
        assert _legacy_json(armed) == _legacy_json(plain)
        assert armed.metrics_snapshot is not None

    def test_run_result_round_trips_snapshot(self):
        result = run_scenario(_scenario(), with_metrics=True)
        again = RunResult.from_json(result.to_json())
        assert again.metrics_snapshot == result.metrics_snapshot
        assert json.dumps(again.to_json(), sort_keys=True) == json.dumps(
            result.to_json(), sort_keys=True
        )

    def test_decision_latency_histogram_is_populated(self):
        result = run_scenario(_scenario(), with_metrics=True)
        family = result.metrics_snapshot.family(
            "repro_admission_decision_seconds"
        )
        total = sum(snap.count for _, snap in family.series)
        decisions = result.metrics_snapshot.family(
            "repro_admission_decisions_total"
        )
        outcomes = sum(value for _, value in decisions.series)
        assert total == outcomes > 0


# ----------------------------------------------------------------------
# Worker invariance and the CLI surface
# ----------------------------------------------------------------------
class TestWorkerInvariance:
    def test_run_cells_exposition_is_worker_invariant(self):
        cells = [(11, False), (12, False)]
        serial = run_cells(_metrics_exposition_cell, cells, n_workers=1)
        parallel = run_cells(_metrics_exposition_cell, cells, n_workers=2)
        assert serial == parallel

    def test_fold_order_matches_serial(self):
        results = [
            run_scenario(_scenario(seed), with_metrics=True)
            for seed in (11, 12)
        ]
        merged = results[0].metrics_snapshot.merge(results[1].metrics_snapshot)
        remerged = results[1].metrics_snapshot.merge(
            results[0].metrics_snapshot
        )
        assert merged.expose() == remerged.expose()


class TestMetricsCli:
    def test_metrics_command_writes_exposition(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(_scenario(duration=5.0).to_json_str())
        out = tmp_path / "metrics.prom"
        result_json = tmp_path / "result.json"
        assert cli_main(
            [
                "metrics", str(scenario_path),
                "--out", str(out), "--json", str(result_json),
            ]
        ) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "# TYPE repro_admission_decisions_total counter" in text
        payload = json.loads(result_json.read_text())
        assert "metrics_snapshot" in payload

    def test_metrics_command_prints_to_stdout(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(_scenario(duration=5.0).to_json_str())
        assert cli_main(["metrics", str(scenario_path)]) == 0
        assert "repro_admission_decisions_total" in capsys.readouterr().out

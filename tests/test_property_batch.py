"""Property tests for the batched hot path.

Four contracts are enforced here:

* **Batch admission parity** — for random bursts of arrivals,
  :meth:`AubAnalyzer.admissible_batch` accepts exactly the prefix-greedy
  set that sequential :meth:`NaiveAubAnalyzer.admissible` calls (with
  real per-stage ledger commits between them) would accept, at exact
  float equality; and :meth:`NaiveAubAnalyzer.admissible_batch` — the
  retained reference transcription — agrees with both.
* **Batch placement parity** — load-balanced bursts planned through a
  :class:`BatchAdmissionSession` (greedy scores against the ledger plus
  the burst's accepted overlay, one ``try_admit`` per plan) produce the
  same assignments, the same accept/reject decisions, and bit-identical
  final ledger utilizations as the sequential path's
  plan / ``admissible`` / per-stage-commit / register loop.
* **Vectorized f(U) parity** — when numpy is importable,
  ``aub_terms_bulk`` returns bit-identical floats to the scalar
  ``aub_term`` loop (elementwise float64 ops are IEEE-754 exact).
* **Ledger shard invariants** — the per-node sharded
  :class:`SyntheticUtilizationLedger` reports the same utilizations,
  snapshots, and contribution counts as an unsharded dict-of-dicts
  reference across random mixes of scalar and batched add/remove
  operations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balancer import LoadBalancerComponent
from repro.sched.aub import (
    AubAnalyzer,
    BatchCandidate,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
    _aub_terms_python,
    _np,
    aub_term,
    aub_terms_bulk,
)
from repro.sched.task import Job, TaskKind

from tests.taskutil import make_task

NODES = ("a", "b", "c", "d")


# ----------------------------------------------------------------------
# Batch admission parity
# ----------------------------------------------------------------------
def _build_population(rng, n_pre):
    """Three identical ledgers/analyzers with ``n_pre`` admitted tasks."""
    ledgers = [SyntheticUtilizationLedger(NODES) for _ in range(3)]
    analyzers = [
        AubAnalyzer(ledgers[0]),
        NaiveAubAnalyzer(ledgers[1]),
        NaiveAubAnalyzer(ledgers[2]),
    ]
    for i in range(n_pre):
        stages = rng.randint(1, 3)
        visits = [rng.choice(NODES) for _ in range(stages)]
        utils = [rng.uniform(0.005, 0.15) for _ in range(stages)]
        expiry = 1e9 if rng.random() < 0.8 else None
        for ledger in ledgers:
            for j, (node, util) in enumerate(zip(visits, utils)):
                ledger.add(node, (f"P{i}", 0, j), util)
        for analyzer in analyzers:
            analyzer.register((f"P{i}", 0), list(visits), expiry)
    return ledgers, analyzers


def _random_burst(rng, size):
    candidates = []
    for c in range(size):
        stages = rng.randint(1, 3)
        visits = [rng.choice(NODES) for _ in range(stages)]
        utils = [rng.uniform(0.005, 0.3) for _ in range(stages)]
        candidates.append(
            BatchCandidate(visits, list(zip(visits, utils)), key=(f"B{c}", 0))
        )
    return candidates


def _sequential_oracle(ledger, analyzer, candidates, now):
    """The ground truth: test each candidate, really commit accepts
    (under each candidate's own registry key)."""
    decisions = []
    for cand in candidates:
        admitted = analyzer.admissible(cand.visits, cand.contribs, now)
        decisions.append(admitted)
        if admitted:
            task_id, job_index = cand.key
            for j, (node, value) in enumerate(cand.stage_contribs):
                ledger.add(node, (task_id, job_index, j), value)
            analyzer.register(cand.key, list(cand.visits), expiry=1e9)
    return decisions


def _assert_burst_parity(seed, n_pre, burst_size):
    rng = random.Random(seed)
    ledgers, analyzers = _build_population(rng, n_pre)
    candidates = _random_burst(rng, burst_size)
    incremental = analyzers[0].admissible_batch(candidates, now=1.0)
    naive_batch = analyzers[1].admissible_batch(candidates, now=1.0)
    sequential = _sequential_oracle(ledgers[2], analyzers[2], candidates, 1.0)
    assert incremental == naive_batch == sequential, (
        f"burst decisions diverged (seed={seed}): incremental={incremental} "
        f"naive_batch={naive_batch} sequential={sequential}"
    )
    # Committing the accepted set through add_batch must reproduce the
    # sequential ledger bit for bit (same per-stage float accumulation).
    entries = [
        (node, (cand.key[0], cand.key[1], j), value)
        for cand, admitted in zip(candidates, incremental)
        if admitted
        for j, (node, value) in enumerate(cand.stage_contribs)
    ]
    ledgers[0].add_batch(entries)
    for node in NODES:
        assert ledgers[0].utilization(node) == ledgers[2].utilization(node)
    # And the committed incremental engine keeps agreeing with the
    # sequential oracle on a follow-up burst (fresh F-keys, no collision
    # with the burst just committed).
    for cand, admitted in zip(candidates, incremental):
        if admitted:
            analyzers[0].register(cand.key, list(cand.visits), expiry=1e9)
    follow_up = [
        BatchCandidate(c.visits, c.stage_contribs, key=(f"F{i}", 0))
        for i, c in enumerate(_random_burst(rng, 4))
    ]
    follow_inc = analyzers[0].admissible_batch(follow_up, now=1.0)
    follow_seq = _sequential_oracle(ledgers[2], analyzers[2], follow_up, 1.0)
    assert follow_inc == follow_seq


class TestBatchAdmissionParity:
    def test_seeded_bursts(self):
        saw_accept = saw_reject = False
        for seed in range(25):
            rng = random.Random(seed)
            ledgers, analyzers = _build_population(rng, rng.randint(0, 20))
            candidates = _random_burst(rng, rng.randint(1, 24))
            incremental = analyzers[0].admissible_batch(candidates, now=1.0)
            sequential = _sequential_oracle(
                ledgers[2], analyzers[2], candidates, 1.0
            )
            assert incremental == sequential
            saw_accept |= any(incremental)
            saw_reject |= not all(incremental)
        # The workload must exercise both outcomes to be meaningful.
        assert saw_accept and saw_reject

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_pre=st.integers(min_value=0, max_value=25),
        burst_size=st.integers(min_value=1, max_value=32),
    )
    def test_random_bursts(self, seed, n_pre, burst_size):
        _assert_burst_parity(seed, n_pre, burst_size)

    def test_empty_burst(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        assert analyzer.admissible_batch([], now=0.0) == []

    def test_saturating_burst_rejects_tail(self):
        """A burst that fills a node admits a prefix and rejects the rest."""
        ledger = SyntheticUtilizationLedger(["a"])
        analyzer = AubAnalyzer(ledger)
        candidates = [
            BatchCandidate(["a"], [("a", 0.2)], key=(f"B{i}", 0))
            for i in range(8)
        ]
        decisions = analyzer.admissible_batch(candidates, now=0.0)
        assert any(decisions) and not all(decisions)
        # Greedy prefix property: once a candidate of this uniform burst
        # is rejected, every later identical candidate is rejected too.
        first_reject = decisions.index(False)
        assert not any(decisions[first_reject:])


# ----------------------------------------------------------------------
# Batch placement parity (load-balanced bursts)
# ----------------------------------------------------------------------
def _random_task(rng, task_id):
    """A periodic chain with randomized eligible sets (deadline=period=1,
    so each stage's synthetic utilization equals its execution time)."""
    stages = rng.randint(1, 3)
    homes, replicas, execs = [], [], []
    for _ in range(stages):
        eligible = rng.sample(list(NODES), rng.randint(1, len(NODES)))
        homes.append(eligible[0])
        replicas.append(tuple(eligible[1:]))
        execs.append(rng.uniform(0.005, 0.3))
    return make_task(
        task_id,
        TaskKind.PERIODIC,
        deadline=1.0,
        execs=tuple(execs),
        homes=homes,
        replicas=replicas,
    )


def _twin_lb_population(rng, n_pre):
    """Two identical ledger/analyzer pairs with ``n_pre`` admitted tasks,
    a mix of live, expiring, and permanent registry entries."""
    ledgers = [SyntheticUtilizationLedger(NODES) for _ in range(2)]
    analyzers = [AubAnalyzer(ledger) for ledger in ledgers]
    for i in range(n_pre):
        stages = rng.randint(1, 3)
        visits = [rng.choice(NODES) for _ in range(stages)]
        utils = [rng.uniform(0.005, 0.15) for _ in range(stages)]
        # 0.5 expires before the burst at now=1.0: the session's prune
        # and the sequential path's per-test prune must agree.
        expiry = rng.choice([1e9, 0.5, None])
        for ledger in ledgers:
            for j, (node, util) in enumerate(zip(visits, utils)):
                ledger.add(node, (f"P{i}", 0, j), util)
        for analyzer in analyzers:
            analyzer.register((f"P{i}", 0), list(visits), expiry)
    return ledgers, analyzers


def _burst_jobs(rng, size):
    jobs = []
    for c in range(size):
        task = _random_task(rng, f"B{c}")
        jobs.append(
            Job(
                task=task,
                index=0,
                arrival_time=1.0,
                arrival_node=task.subtasks[0].home,
            )
        )
    return jobs


def _demand_envelope(jobs):
    """Worst-case per-node demand of a burst: every stage counted on
    each of its eligible processors."""
    demand = {}
    for job in jobs:
        task = job.task
        for subtask in task.subtasks:
            value = task.subtask_utilization(subtask.index)
            for node in subtask.eligible:
                demand[node] = demand.get(node, 0.0) + value
    return demand


def _lb_sequential_oracle(ledger, analyzer, lb, jobs, now):
    """The sequential LB path, transcribed: greedy-plan against the live
    ledger, test in location(), re-test in the AC's test-and-commit, then
    commit per stage and register."""
    plans = []
    for job in jobs:
        task = job.task
        assignment, added = lb._greedy_plan(task, ledger)
        visits = task.visited_processors(assignment)
        if not analyzer.admissible(visits, added, now):
            plans.append(None)
            continue
        contribs = {}
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            contribs[node] = contribs.get(
                node, 0.0
            ) + task.subtask_utilization(subtask.index)
        if not analyzer.admissible(visits, contribs, now):
            plans.append(None)
            continue
        for subtask in task.subtasks:
            ledger.add(
                assignment[subtask.index],
                (task.task_id, job.index, subtask.index),
                task.subtask_utilization(subtask.index),
            )
        analyzer.register((task.task_id, job.index), visits, expiry=1e9)
        plans.append(assignment)
    return plans


def _assert_placement_parity(seed, n_pre, burst_size):
    rng = random.Random(seed)
    ledgers, analyzers = _twin_lb_population(rng, n_pre)
    jobs = _burst_jobs(rng, burst_size)
    lb = LoadBalancerComponent("lb", None)

    session = analyzers[0].batch_session(now=1.0)
    batched = [lb.location_in_batch(job, session) for job in jobs]
    # A screened session (sessions never mutate ledger or registry, so a
    # second one can replay the same burst): skipping the rescans the
    # demand envelope exempts must not change any plan.
    screened_session = analyzers[0].batch_session(
        now=1.0, demand=_demand_envelope(jobs)
    )
    screened = [lb.location_in_batch(job, screened_session) for job in jobs]
    assert screened == batched, (
        f"screened session diverged (seed={seed}): "
        f"screened={screened} unscreened={batched}"
    )
    entries = [
        (
            plan[subtask.index],
            (job.task.task_id, job.index, subtask.index),
            job.task.subtask_utilization(subtask.index),
        )
        for job, plan in zip(jobs, batched)
        if plan is not None
        for subtask in job.task.subtasks
    ]
    ledgers[0].add_batch(entries)

    sequential = _lb_sequential_oracle(
        ledgers[1], analyzers[1], lb, jobs, now=1.0
    )
    assert batched == sequential, (
        f"placement plans diverged (seed={seed}): "
        f"batched={batched} sequential={sequential}"
    )
    for node in NODES:
        assert ledgers[0].utilization(node) == ledgers[1].utilization(node)


class TestBatchPlacementParity:
    def test_seeded_bursts(self):
        saw_accept = saw_reject = False
        for seed in range(25):
            rng = random.Random(seed)
            ledgers, analyzers = _twin_lb_population(rng, rng.randint(0, 20))
            jobs = _burst_jobs(rng, rng.randint(1, 24))
            lb = LoadBalancerComponent("lb", None)
            session = analyzers[0].batch_session(
                now=1.0, demand=_demand_envelope(jobs)
            )
            batched = [lb.location_in_batch(job, session) for job in jobs]
            sequential = _lb_sequential_oracle(
                ledgers[1], analyzers[1], lb, jobs, now=1.0
            )
            assert batched == sequential
            saw_accept |= any(p is not None for p in batched)
            saw_reject |= any(p is None for p in batched)
        assert saw_accept and saw_reject

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_pre=st.integers(min_value=0, max_value=25),
        burst_size=st.integers(min_value=1, max_value=24),
    )
    def test_random_bursts(self, seed, n_pre, burst_size):
        _assert_placement_parity(seed, n_pre, burst_size)

    def test_overlay_is_visible_to_later_plans(self):
        """A placement accepted earlier in the burst must steer later
        greedy scores, exactly as an interim ledger commit would."""
        ledger = SyntheticUtilizationLedger(("a", "b"))
        analyzer = AubAnalyzer(ledger)
        lb = LoadBalancerComponent("lb", None)
        session = analyzer.batch_session(now=0.0)
        # Both stages may run anywhere; empty ledger ties break to "a".
        t0 = make_task("T0", execs=(0.2,), homes=("a",), replicas=[("b",)])
        t1 = make_task("T1", execs=(0.1,), homes=("a",), replicas=[("b",)])
        j0 = Job(task=t0, index=0, arrival_time=0.0, arrival_node="a")
        j1 = Job(task=t1, index=0, arrival_time=0.0, arrival_node="a")
        assert lb.location_in_batch(j0, session) == {0: "a"}
        # Without the overlay "a" would still score 0.0 and win the tie.
        assert lb.location_in_batch(j1, session) == {0: "b"}

    def test_saturating_burst_rejects_tail(self):
        ledger = SyntheticUtilizationLedger(("a",))
        analyzer = AubAnalyzer(ledger)
        lb = LoadBalancerComponent("lb", None)
        session = analyzer.batch_session(now=0.0)
        plans = []
        for i in range(8):
            task = make_task(f"T{i}", execs=(0.2,), homes=("a",))
            job = Job(task=task, index=0, arrival_time=0.0, arrival_node="a")
            plans.append(lb.location_in_batch(job, session))
        decisions = [p is not None for p in plans]
        assert any(decisions) and not all(decisions)
        first_reject = decisions.index(False)
        assert not any(decisions[first_reject:])


# ----------------------------------------------------------------------
# Vectorized f(U) parity
# ----------------------------------------------------------------------
class TestBulkTermParity:
    def test_scalar_fallback_matches_aub_term(self):
        values = [0.0, 0.1, 0.5, 0.999, 1.0, 1.5]
        assert aub_terms_bulk(values) == [aub_term(v) for v in values]

    @pytest.mark.skipif(_np is None, reason="numpy not importable")
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.25, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    def test_numpy_path_bit_identical(self, values):
        from repro.sched.aub import _aub_terms_numpy

        scalar = _aub_terms_python(values)
        vectorized = _aub_terms_numpy(values)
        assert len(scalar) == len(vectorized)
        for s, v in zip(scalar, vectorized):
            # Exact equality: elementwise float64 arithmetic must agree
            # with the scalar expression bit for bit (inf == inf holds).
            assert s == v

    @pytest.mark.skipif(_np is None, reason="numpy not importable")
    def test_negative_utilization_rejected_by_both_paths(self):
        from repro.errors import SchedulingError
        from repro.sched.aub import _aub_terms_numpy

        with pytest.raises(SchedulingError):
            _aub_terms_python([0.1, -1e-9])
        with pytest.raises(SchedulingError):
            _aub_terms_numpy([0.1, -1e-9])


# ----------------------------------------------------------------------
# Ledger shard invariants
# ----------------------------------------------------------------------
class _UnshardedReference:
    """The pre-sharding ledger layout: shared dicts keyed by node."""

    def __init__(self, nodes):
        self.contribs = {n: {} for n in nodes}
        self.totals = {n: 0.0 for n in nodes}

    def add(self, node, key, value):
        assert key not in self.contribs[node]
        self.contribs[node][key] = value
        self.totals[node] += value

    def remove(self, node, key):
        value = self.contribs[node].pop(key, None)
        if value is None:
            return False
        self.totals[node] -= value
        if not self.contribs[node]:
            self.totals[node] = 0.0
        return True


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "add_batch", "remove_batch"]),
        st.integers(min_value=0, max_value=5),  # op seed
    ),
    max_size=30,
)


class TestLedgerShardInvariants:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), ops=ops_strategy)
    def test_sharded_matches_unsharded_reference(self, seed, ops):
        rng = random.Random(seed)
        ledger = SyntheticUtilizationLedger(NODES)
        reference = _UnshardedReference(NODES)
        live = []
        counter = 0
        for op, _ in ops:
            if op == "add" or (op == "remove" and not live):
                node = rng.choice(NODES)
                key = ("T", counter, 0)
                counter += 1
                value = rng.uniform(0.001, 0.2)
                ledger.add(node, key, value)
                reference.add(node, key, value)
                live.append((node, key))
            elif op == "remove":
                node, key = live.pop(rng.randrange(len(live)))
                assert ledger.remove(node, key) == reference.remove(node, key)
            elif op == "add_batch":
                entries = []
                for _ in range(rng.randint(1, 6)):
                    node = rng.choice(NODES)
                    key = ("T", counter, 0)
                    counter += 1
                    value = rng.uniform(0.001, 0.2)
                    entries.append((node, key, value))
                    live.append((node, key))
                ledger.add_batch(entries)
                for node, key, value in entries:
                    reference.add(node, key, value)
            else:  # remove_batch
                picks = [
                    live.pop(rng.randrange(len(live)))
                    for _ in range(min(len(live), rng.randint(1, 6)))
                ]
                # Mix in an absent key: tolerated, not counted.
                entries = picks + [("a", ("absent", counter, 9))]
                removed = ledger.remove_batch(entries)
                expected = sum(
                    1 for node, key in picks if reference.remove(node, key)
                )
                assert removed == expected
            # The invariant proper: identical externally visible state,
            # bit for bit (both sides accumulate floats in one order).
            assert ledger.snapshot() == reference.totals
            for node in NODES:
                assert ledger.utilization(node) == reference.totals[node]
                assert ledger.contribution_count(node) == len(
                    reference.contribs[node]
                )

    def test_batch_notifications_once_per_touched_node(self):
        ledger = SyntheticUtilizationLedger(NODES)
        notified = []
        ledger.subscribe(notified.append)
        ledger.add_batch(
            [
                ("a", ("T", 0, 0), 0.1),
                ("a", ("T", 0, 1), 0.1),
                ("b", ("T", 0, 2), 0.1),
            ]
        )
        assert notified == ["a", "b"]
        notified.clear()
        removed = ledger.remove_batch(
            [
                ("a", ("T", 0, 0)),
                ("a", ("T", 0, 1)),
                ("b", ("T", 0, 2)),
                ("c", ("missing", 0, 0)),  # absent: no notification for c
            ]
        )
        assert removed == 3
        assert notified == ["a", "b"]

    def test_time_tracking_through_batches(self):
        ledger = SyntheticUtilizationLedger(["a"], track_time=True)
        ledger.add_batch([("a", ("T", 0, 0), 0.4)], now=0.0)
        ledger.remove_batch([("a", ("T", 0, 0))], now=2.0)
        # 0.4 for two seconds, then 0 for two seconds.
        assert abs(ledger.average_utilization("a", 4.0) - 0.2) < 1e-12


# ----------------------------------------------------------------------
# Expiry-heap compaction
# ----------------------------------------------------------------------
class TestExpiryHeapCompaction:
    def test_heap_stays_bounded_under_reregistration_churn(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        # Re-register the same keys with fresh expiries far in the future:
        # without compaction the heap grows by one stale entry per cycle.
        for round_ in range(50):
            for i in range(20):
                analyzer.register(
                    (f"T{i}", 0), ["a"], expiry=1e6 + round_ * 20 + i
                )
            analyzer.prune(now=0.0)
        assert analyzer.registered == 20
        # Bounded: at most live entries plus the sub-majority stale tail.
        assert len(analyzer._expiry_heap) <= 2 * analyzer.registered + 1

    def test_compaction_preserves_expiry_semantics(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        for i in range(100):
            analyzer.register((f"T{i}", 0), ["a"], expiry=10.0 + i)
        # Stale the majority by re-registering with later expiries.
        for i in range(80):
            analyzer.register((f"T{i}", 0), ["a"], expiry=500.0 + i)
        analyzer.prune(now=0.0)  # triggers compaction
        assert analyzer.registered == 100
        # Entries with untouched expiries retire on time...
        analyzer.prune(now=200.0)
        assert analyzer.registered == 80
        # ...and the re-registered ones at their new expiry, not the old.
        analyzer.prune(now=600.0)
        assert analyzer.registered == 0

"""Property tests for the batched hot path.

Two contracts are enforced here:

* **Batch admission parity** — for random bursts of arrivals,
  :meth:`AubAnalyzer.admissible_batch` accepts exactly the prefix-greedy
  set that sequential :meth:`NaiveAubAnalyzer.admissible` calls (with
  real per-stage ledger commits between them) would accept, at exact
  float equality; and :meth:`NaiveAubAnalyzer.admissible_batch` — the
  retained reference transcription — agrees with both.
* **Ledger shard invariants** — the per-node sharded
  :class:`SyntheticUtilizationLedger` reports the same utilizations,
  snapshots, and contribution counts as an unsharded dict-of-dicts
  reference across random mixes of scalar and batched add/remove
  operations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.aub import (
    AubAnalyzer,
    BatchCandidate,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
)

NODES = ("a", "b", "c", "d")


# ----------------------------------------------------------------------
# Batch admission parity
# ----------------------------------------------------------------------
def _build_population(rng, n_pre):
    """Three identical ledgers/analyzers with ``n_pre`` admitted tasks."""
    ledgers = [SyntheticUtilizationLedger(NODES) for _ in range(3)]
    analyzers = [
        AubAnalyzer(ledgers[0]),
        NaiveAubAnalyzer(ledgers[1]),
        NaiveAubAnalyzer(ledgers[2]),
    ]
    for i in range(n_pre):
        stages = rng.randint(1, 3)
        visits = [rng.choice(NODES) for _ in range(stages)]
        utils = [rng.uniform(0.005, 0.15) for _ in range(stages)]
        expiry = 1e9 if rng.random() < 0.8 else None
        for ledger in ledgers:
            for j, (node, util) in enumerate(zip(visits, utils)):
                ledger.add(node, (f"P{i}", 0, j), util)
        for analyzer in analyzers:
            analyzer.register((f"P{i}", 0), list(visits), expiry)
    return ledgers, analyzers


def _random_burst(rng, size):
    candidates = []
    for c in range(size):
        stages = rng.randint(1, 3)
        visits = [rng.choice(NODES) for _ in range(stages)]
        utils = [rng.uniform(0.005, 0.3) for _ in range(stages)]
        candidates.append(
            BatchCandidate(visits, list(zip(visits, utils)), key=(f"B{c}", 0))
        )
    return candidates


def _sequential_oracle(ledger, analyzer, candidates, now):
    """The ground truth: test each candidate, really commit accepts
    (under each candidate's own registry key)."""
    decisions = []
    for cand in candidates:
        admitted = analyzer.admissible(cand.visits, cand.contribs, now)
        decisions.append(admitted)
        if admitted:
            task_id, job_index = cand.key
            for j, (node, value) in enumerate(cand.stage_contribs):
                ledger.add(node, (task_id, job_index, j), value)
            analyzer.register(cand.key, list(cand.visits), expiry=1e9)
    return decisions


def _assert_burst_parity(seed, n_pre, burst_size):
    rng = random.Random(seed)
    ledgers, analyzers = _build_population(rng, n_pre)
    candidates = _random_burst(rng, burst_size)
    incremental = analyzers[0].admissible_batch(candidates, now=1.0)
    naive_batch = analyzers[1].admissible_batch(candidates, now=1.0)
    sequential = _sequential_oracle(ledgers[2], analyzers[2], candidates, 1.0)
    assert incremental == naive_batch == sequential, (
        f"burst decisions diverged (seed={seed}): incremental={incremental} "
        f"naive_batch={naive_batch} sequential={sequential}"
    )
    # Committing the accepted set through add_batch must reproduce the
    # sequential ledger bit for bit (same per-stage float accumulation).
    entries = [
        (node, (cand.key[0], cand.key[1], j), value)
        for cand, admitted in zip(candidates, incremental)
        if admitted
        for j, (node, value) in enumerate(cand.stage_contribs)
    ]
    ledgers[0].add_batch(entries)
    for node in NODES:
        assert ledgers[0].utilization(node) == ledgers[2].utilization(node)
    # And the committed incremental engine keeps agreeing with the
    # sequential oracle on a follow-up burst (fresh F-keys, no collision
    # with the burst just committed).
    for cand, admitted in zip(candidates, incremental):
        if admitted:
            analyzers[0].register(cand.key, list(cand.visits), expiry=1e9)
    follow_up = [
        BatchCandidate(c.visits, c.stage_contribs, key=(f"F{i}", 0))
        for i, c in enumerate(_random_burst(rng, 4))
    ]
    follow_inc = analyzers[0].admissible_batch(follow_up, now=1.0)
    follow_seq = _sequential_oracle(ledgers[2], analyzers[2], follow_up, 1.0)
    assert follow_inc == follow_seq


class TestBatchAdmissionParity:
    def test_seeded_bursts(self):
        saw_accept = saw_reject = False
        for seed in range(25):
            rng = random.Random(seed)
            ledgers, analyzers = _build_population(rng, rng.randint(0, 20))
            candidates = _random_burst(rng, rng.randint(1, 24))
            incremental = analyzers[0].admissible_batch(candidates, now=1.0)
            sequential = _sequential_oracle(
                ledgers[2], analyzers[2], candidates, 1.0
            )
            assert incremental == sequential
            saw_accept |= any(incremental)
            saw_reject |= not all(incremental)
        # The workload must exercise both outcomes to be meaningful.
        assert saw_accept and saw_reject

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_pre=st.integers(min_value=0, max_value=25),
        burst_size=st.integers(min_value=1, max_value=32),
    )
    def test_random_bursts(self, seed, n_pre, burst_size):
        _assert_burst_parity(seed, n_pre, burst_size)

    def test_empty_burst(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        assert analyzer.admissible_batch([], now=0.0) == []

    def test_saturating_burst_rejects_tail(self):
        """A burst that fills a node admits a prefix and rejects the rest."""
        ledger = SyntheticUtilizationLedger(["a"])
        analyzer = AubAnalyzer(ledger)
        candidates = [
            BatchCandidate(["a"], [("a", 0.2)], key=(f"B{i}", 0))
            for i in range(8)
        ]
        decisions = analyzer.admissible_batch(candidates, now=0.0)
        assert any(decisions) and not all(decisions)
        # Greedy prefix property: once a candidate of this uniform burst
        # is rejected, every later identical candidate is rejected too.
        first_reject = decisions.index(False)
        assert not any(decisions[first_reject:])


# ----------------------------------------------------------------------
# Ledger shard invariants
# ----------------------------------------------------------------------
class _UnshardedReference:
    """The pre-sharding ledger layout: shared dicts keyed by node."""

    def __init__(self, nodes):
        self.contribs = {n: {} for n in nodes}
        self.totals = {n: 0.0 for n in nodes}

    def add(self, node, key, value):
        assert key not in self.contribs[node]
        self.contribs[node][key] = value
        self.totals[node] += value

    def remove(self, node, key):
        value = self.contribs[node].pop(key, None)
        if value is None:
            return False
        self.totals[node] -= value
        if not self.contribs[node]:
            self.totals[node] = 0.0
        return True


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "add_batch", "remove_batch"]),
        st.integers(min_value=0, max_value=5),  # op seed
    ),
    max_size=30,
)


class TestLedgerShardInvariants:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), ops=ops_strategy)
    def test_sharded_matches_unsharded_reference(self, seed, ops):
        rng = random.Random(seed)
        ledger = SyntheticUtilizationLedger(NODES)
        reference = _UnshardedReference(NODES)
        live = []
        counter = 0
        for op, _ in ops:
            if op == "add" or (op == "remove" and not live):
                node = rng.choice(NODES)
                key = ("T", counter, 0)
                counter += 1
                value = rng.uniform(0.001, 0.2)
                ledger.add(node, key, value)
                reference.add(node, key, value)
                live.append((node, key))
            elif op == "remove":
                node, key = live.pop(rng.randrange(len(live)))
                assert ledger.remove(node, key) == reference.remove(node, key)
            elif op == "add_batch":
                entries = []
                for _ in range(rng.randint(1, 6)):
                    node = rng.choice(NODES)
                    key = ("T", counter, 0)
                    counter += 1
                    value = rng.uniform(0.001, 0.2)
                    entries.append((node, key, value))
                    live.append((node, key))
                ledger.add_batch(entries)
                for node, key, value in entries:
                    reference.add(node, key, value)
            else:  # remove_batch
                picks = [
                    live.pop(rng.randrange(len(live)))
                    for _ in range(min(len(live), rng.randint(1, 6)))
                ]
                # Mix in an absent key: tolerated, not counted.
                entries = picks + [("a", ("absent", counter, 9))]
                removed = ledger.remove_batch(entries)
                expected = sum(
                    1 for node, key in picks if reference.remove(node, key)
                )
                assert removed == expected
            # The invariant proper: identical externally visible state,
            # bit for bit (both sides accumulate floats in one order).
            assert ledger.snapshot() == reference.totals
            for node in NODES:
                assert ledger.utilization(node) == reference.totals[node]
                assert ledger.contribution_count(node) == len(
                    reference.contribs[node]
                )

    def test_batch_notifications_once_per_touched_node(self):
        ledger = SyntheticUtilizationLedger(NODES)
        notified = []
        ledger.subscribe(notified.append)
        ledger.add_batch(
            [
                ("a", ("T", 0, 0), 0.1),
                ("a", ("T", 0, 1), 0.1),
                ("b", ("T", 0, 2), 0.1),
            ]
        )
        assert notified == ["a", "b"]
        notified.clear()
        removed = ledger.remove_batch(
            [
                ("a", ("T", 0, 0)),
                ("a", ("T", 0, 1)),
                ("b", ("T", 0, 2)),
                ("c", ("missing", 0, 0)),  # absent: no notification for c
            ]
        )
        assert removed == 3
        assert notified == ["a", "b"]

    def test_time_tracking_through_batches(self):
        ledger = SyntheticUtilizationLedger(["a"], track_time=True)
        ledger.add_batch([("a", ("T", 0, 0), 0.4)], now=0.0)
        ledger.remove_batch([("a", ("T", 0, 0))], now=2.0)
        # 0.4 for two seconds, then 0 for two seconds.
        assert abs(ledger.average_utilization("a", 4.0) - 0.2) < 1e-12


# ----------------------------------------------------------------------
# Expiry-heap compaction
# ----------------------------------------------------------------------
class TestExpiryHeapCompaction:
    def test_heap_stays_bounded_under_reregistration_churn(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        # Re-register the same keys with fresh expiries far in the future:
        # without compaction the heap grows by one stale entry per cycle.
        for round_ in range(50):
            for i in range(20):
                analyzer.register(
                    (f"T{i}", 0), ["a"], expiry=1e6 + round_ * 20 + i
                )
            analyzer.prune(now=0.0)
        assert analyzer.registered == 20
        # Bounded: at most live entries plus the sub-majority stale tail.
        assert len(analyzer._expiry_heap) <= 2 * analyzer.registered + 1

    def test_compaction_preserves_expiry_semantics(self):
        ledger = SyntheticUtilizationLedger(NODES)
        analyzer = AubAnalyzer(ledger)
        for i in range(100):
            analyzer.register((f"T{i}", 0), ["a"], expiry=10.0 + i)
        # Stale the majority by re-registering with later expiries.
        for i in range(80):
            analyzer.register((f"T{i}", 0), ["a"], expiry=500.0 + i)
        analyzer.prune(now=0.0)  # triggers compaction
        assert analyzer.registered == 100
        # Entries with untouched expiries retire on time...
        analyzer.prune(now=200.0)
        assert analyzer.registered == 80
        # ...and the re-registered ones at their new expiry, not the old.
        analyzer.prune(now=600.0)
        assert analyzer.registered == 0

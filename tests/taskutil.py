"""Shared task/workload factories for the test suite."""

from __future__ import annotations

from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import Workload


def make_task(
    task_id: str = "T1",
    kind: TaskKind = TaskKind.PERIODIC,
    deadline: float = 1.0,
    execs=(0.1,),
    homes=("app1",),
    replicas=None,
    period: float = None,
    phase: float = 0.0,
) -> TaskSpec:
    """Convenience task factory used across test modules."""
    replicas = replicas or [()] * len(execs)
    subtasks = tuple(
        SubtaskSpec(
            index=i,
            execution_time=execs[i],
            home=homes[i],
            replicas=tuple(replicas[i]),
        )
        for i in range(len(execs))
    )
    if kind is TaskKind.PERIODIC and period is None:
        period = deadline
    return TaskSpec(
        task_id=task_id,
        kind=kind,
        deadline=deadline,
        subtasks=subtasks,
        period=period,
        phase=phase,
    )


def make_two_node_workload() -> Workload:
    """One periodic chain and one aperiodic task over two processors."""
    periodic = make_task(
        "P1",
        TaskKind.PERIODIC,
        deadline=1.0,
        execs=(0.05, 0.05),
        homes=("app1", "app2"),
        replicas=[("app2",), ("app1",)],
    )
    aperiodic = make_task(
        "A1",
        TaskKind.APERIODIC,
        deadline=0.5,
        execs=(0.02,),
        homes=("app1",),
        replicas=[("app2",)],
    )
    return Workload(tasks=(periodic, aperiodic), app_nodes=("app1", "app2"))

"""Paired-comparison guarantees behind the Figure 5/6 experiments."""

import pytest

from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.experiments import run_figure5
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import build_arrival_plan
from repro.workloads.generator import generate_random_workload

from tests.taskutil import make_two_node_workload


class TestPairedTraces:
    def test_same_seed_same_arrival_plan_across_combos(self):
        """The arrival RNG stream is independent of configuration, so two
        systems with the same seed see identical arrival traces even
        under different strategy combinations — the property that makes
        the figure comparisons paired."""
        workload = make_two_node_workload()
        a = MiddlewareSystem(workload, StrategyCombo.from_label("T_N_N"), seed=9)
        b = MiddlewareSystem(workload, StrategyCombo.from_label("J_J_J"), seed=9)
        ra = a.run(duration=15.0)
        rb = b.run(duration=15.0)
        assert ra.arrived_jobs == rb.arrived_jobs

    def test_arrival_plan_deterministic_per_seed(self):
        workload = generate_random_workload(RngRegistry(1).stream("wl"))
        p1 = build_arrival_plan(workload, 30.0, RngRegistry(5).stream("arrivals"))
        p2 = build_arrival_plan(workload, 30.0, RngRegistry(5).stream("arrivals"))
        assert p1 == p2

    def test_figure5_reproducible(self):
        kwargs = dict(n_sets=2, duration=15.0, seed=11)
        labels = [StrategyCombo.from_label("J_J_J")]
        r1 = run_figure5(combos=labels, **kwargs)
        r2 = run_figure5(combos=labels, **kwargs)
        assert r1.per_combo == r2.per_combo

    def test_figure5_accepts_fixed_workloads(self):
        workloads = [
            generate_random_workload(RngRegistry(3).stream("wl")),
        ]
        result = run_figure5(
            duration=15.0,
            seed=1,
            combos=[StrategyCombo.from_label("J_N_N")],
            workloads=workloads,
        )
        assert result.n_sets == 1
        assert "J_N_N" in result.per_combo

"""The public surface must stay ``mypy --strict``-clean.

CI runs mypy in the lint job; this test runs the identical check so a
developer with mypy installed gets the same signal from the test suite.
Environments without mypy (the core install is dependency-free) skip.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_repro_api_is_strictly_typed():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro/api"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repro_lint_is_strictly_typed():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "tools/repro_lint"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships_with_the_package():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
    assert "py.typed" in (REPO_ROOT / "setup.py").read_text()

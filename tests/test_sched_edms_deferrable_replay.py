"""Unit tests for EDMS priorities, the DS baseline and the replay engine."""

import pytest

from repro.errors import SchedulingError
from repro.sched.deferrable import DeferrableServerPolicy, rm_utilization_bound
from repro.sched.edms import assign_priorities, edms_priority
from repro.sched.replay import AubReplayPolicy, replay
from repro.sched.task import Job, TaskKind

from tests.taskutil import make_task


# ----------------------------------------------------------------------
# EDMS
# ----------------------------------------------------------------------
class TestEdms:
    def test_priority_is_deadline(self):
        task = make_task(deadline=0.75)
        assert edms_priority(task) == 0.75

    def test_levels_ordered_by_deadline(self):
        tasks = [
            make_task("T_slow", deadline=5.0),
            make_task("T_fast", deadline=0.5),
            make_task("T_mid", deadline=2.0),
        ]
        levels = assign_priorities(tasks)
        assert levels == {"T_fast": 0, "T_mid": 1, "T_slow": 2}

    def test_ties_broken_by_task_id(self):
        tasks = [make_task("B", deadline=1.0), make_task("A", deadline=1.0)]
        levels = assign_priorities(tasks)
        assert levels == {"A": 0, "B": 1}


# ----------------------------------------------------------------------
# Deferrable server
# ----------------------------------------------------------------------
class TestDeferrableServer:
    def test_rm_bound_values(self):
        assert rm_utilization_bound(1) == pytest.approx(1.0)
        assert rm_utilization_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert rm_utilization_bound(0) == 1.0

    def test_parameter_validation(self):
        with pytest.raises(SchedulingError):
            DeferrableServerPolicy([])
        with pytest.raises(SchedulingError):
            DeferrableServerPolicy(["a"], server_utilization=1.5)
        with pytest.raises(SchedulingError):
            DeferrableServerPolicy(["a"], server_period=0.0)

    def test_periodic_admitted_once_then_cached(self):
        policy = DeferrableServerPolicy(["app1"])
        task = make_task("P1", TaskKind.PERIODIC, deadline=1.0, execs=(0.1,), homes=("app1",))
        d0 = policy.on_arrival(Job(task, 0, 0.0, "app1"), 0.0)
        d1 = policy.on_arrival(Job(task, 1, 1.0, "app1"), 1.0)
        assert d0.admitted and d1.admitted
        assert "cached" in d1.reason

    def test_periodic_overload_rejected(self):
        policy = DeferrableServerPolicy(["app1"], server_utilization=0.3)
        heavy = make_task("P1", TaskKind.PERIODIC, deadline=1.0, execs=(0.9,), homes=("app1",))
        decision = policy.on_arrival(Job(heavy, 0, 0.0, "app1"), 0.0)
        assert not decision.admitted

    def test_aperiodic_served_from_budget(self):
        policy = DeferrableServerPolicy(
            ["app1"], server_utilization=0.5, server_period=0.1
        )
        ap = make_task("A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.2,), homes=("app1",))
        decision = policy.on_arrival(Job(ap, 0, 0.0, "app1"), 0.0)
        assert decision.admitted  # supply over 1s window: ~0.5 > 0.2

    def test_aperiodic_rejected_when_budget_committed(self):
        policy = DeferrableServerPolicy(
            ["app1"], server_utilization=0.2, server_period=0.1
        )
        ap = make_task("A1", TaskKind.APERIODIC, deadline=0.5, execs=(0.09,), homes=("app1",))
        # Supply over 0.5 s = 5 * 0.02 = 0.1; first job (0.09) fits,
        # second job in the same window does not.
        d0 = policy.on_arrival(Job(ap, 0, 0.0, "app1"), 0.0)
        d1 = policy.on_arrival(Job(ap, 1, 0.01, "app1"), 0.01)
        assert d0.admitted and not d1.admitted

    def test_budget_reclaimed_after_deadline(self):
        policy = DeferrableServerPolicy(
            ["app1"], server_utilization=0.2, server_period=0.1
        )
        ap = make_task("A1", TaskKind.APERIODIC, deadline=0.5, execs=(0.09,), homes=("app1",))
        job0 = Job(ap, 0, 0.0, "app1")
        policy.on_arrival(job0, 0.0)
        policy.on_deadline(job0, 0.5)
        d2 = policy.on_arrival(Job(ap, 2, 0.6, "app1"), 0.6)
        assert d2.admitted


# ----------------------------------------------------------------------
# Replay engine
# ----------------------------------------------------------------------
class TestReplay:
    def test_replay_accumulates_ratio(self):
        task = make_task(
            "A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.3,), homes=("app1",)
        )
        jobs = [Job(task, i, float(i) * 2.0, "app1") for i in range(5)]
        for job in jobs:
            job.assignment = task.home_assignment()
        result = replay(jobs, AubReplayPolicy(["app1"]))
        # Arrivals 2 s apart, deadline 1 s: never concurrent -> all admitted.
        assert result.admitted_jobs == 5
        assert result.accepted_utilization_ratio == pytest.approx(1.0)

    def test_replay_rejects_on_overload(self):
        task = make_task(
            "A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.5,), homes=("app1",)
        )
        # Three simultaneous jobs: only one fits (f(0.5)=0.75, f(1.0)=inf).
        jobs = [Job(task, i, 0.0, "app1") for i in range(3)]
        for job in jobs:
            job.assignment = task.home_assignment()
        result = replay(jobs, AubReplayPolicy(["app1"]))
        assert result.admitted_jobs == 1
        assert result.accepted_utilization_ratio == pytest.approx(1 / 3)

    def test_expiry_frees_capacity(self):
        task = make_task(
            "A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.5,), homes=("app1",)
        )
        jobs = [Job(task, 0, 0.0, "app1"), Job(task, 1, 1.5, "app1")]
        for job in jobs:
            job.assignment = task.home_assignment()
        result = replay(jobs, AubReplayPolicy(["app1"]))
        assert result.admitted_jobs == 2

    def test_empty_trace(self):
        result = replay([], AubReplayPolicy(["app1"]))
        assert result.arrived_jobs == 0
        assert result.accepted_utilization_ratio == 1.0
        assert result.acceptance_rate == 1.0

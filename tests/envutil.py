"""Hand-built minimal runtime environments for component unit tests.

``make_env`` wires the full infrastructure (sim, network, federation,
processors, containers) for a given node list without deploying any
components, so tests can install and probe individual service components
in isolation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ccm.container import Container
from repro.core.cost_model import CostModel
from repro.core.runtime import RuntimeEnv
from repro.core.strategies import StrategyCombo
from repro.cpu.processor import Processor
from repro.metrics.overhead import OverheadAccounting
from repro.metrics.ratio import MetricsCollector
from repro.net.federation import FederatedEventChannel
from repro.net.latency import ConstantDelay
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


def make_env(
    app_nodes=("app1", "app2"),
    manager: str = "task_manager",
    combo_label: str = "J_N_N",
    delay: float = 0.001,
    cost_model: CostModel = None,
    seed: int = 0,
) -> Tuple[RuntimeEnv, Dict[str, Container]]:
    sim = Simulator()
    rngs = RngRegistry(seed)
    network = Network(sim, rngs.stream("network"), ConstantDelay(delay))
    federation = FederatedEventChannel(network)
    containers: Dict[str, Container] = {}
    tracer = Tracer(enabled=True)
    for node in (manager,) + tuple(app_nodes):
        federation.add_node(node)
        containers[node] = Container(Processor(sim, node), federation, tracer)
    env = RuntimeEnv(
        sim=sim,
        network=network,
        federation=federation,
        combo=StrategyCombo.from_label(combo_label),
        cost_model=cost_model or CostModel.zero(),
        rngs=rngs,
        metrics=MetricsCollector(),
        overhead=OverheadAccounting(),
        tracer=tracer,
        manager_node=manager,
        app_nodes=list(app_nodes),
    )
    return env, containers

"""Tests for the trace timeline tooling."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.sim.timeline import build_timeline, format_lanes, format_timeline
from repro.sim.tracing import Tracer

from tests.taskutil import make_two_node_workload


@pytest.fixture(scope="module")
def traced_run():
    system = MiddlewareSystem(
        make_two_node_workload(),
        StrategyCombo.from_label("J_J_T"),
        seed=3,
        trace=True,
        cost_model=CostModel.zero(),
        delay_model=ConstantDelay(0.001),
    )
    results = system.run(duration=5.0)
    return system, results


class TestTimeline:
    def test_tracer_collects_when_enabled(self, traced_run):
        system, _results = traced_run
        assert len(system.tracer) > 0
        categories = system.tracer.categories()
        assert "te.arrive" in categories
        assert "ac.accept" in categories
        assert "job.complete" in categories

    def test_tracer_silent_when_disabled(self):
        system = MiddlewareSystem(
            make_two_node_workload(),
            StrategyCombo.from_label("J_N_N"),
            seed=3,
            trace=False,
        )
        system.run(duration=2.0)
        assert len(system.tracer) == 0

    def test_timeline_events_sorted(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        times = [e.time for e in timeline.events]
        assert times == sorted(times)

    def test_node_and_category_filters(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        for event in timeline.for_node("app1"):
            assert event.node == "app1"
        for event in timeline.for_category("te.release"):
            assert event.category == "te.release"

    def test_job_history_is_causally_ordered(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        history = timeline.job_history("P1", 0)
        categories = [e.category for e in history]
        assert categories.index("te.arrive") < categories.index("te.release")
        assert categories.index("te.release") < categories.index("job.complete")

    def test_format_timeline_limits_output(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        text = format_timeline(timeline, limit=5)
        assert "more events" in text

    def test_format_lanes_renders_all_nodes(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        text = format_lanes(
            timeline, ["task_manager", "app1", "app2"], 0.0, 2.0, width=50
        )
        assert "task_manager" in text and "app1" in text
        assert "legend" in text

    def test_format_lanes_rejects_bad_window(self):
        timeline = build_timeline(Tracer())
        with pytest.raises(ValueError):
            format_lanes(timeline, ["a"], 1.0, 1.0)

    def test_between_window(self, traced_run):
        system, _results = traced_run
        timeline = build_timeline(system.tracer)
        for event in timeline.between(1.0, 2.0):
            assert 1.0 <= event.time < 2.0

"""Edge-case tests: event topics, runtime env, drain semantics, reports."""

import pytest

from repro.ccm.events import accept_topic, reject_topic, trigger_topic
from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.runtime import RuntimeEnv
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.sched.task import TaskKind
from repro.workloads.model import Workload

from tests.envutil import make_env
from tests.taskutil import make_task, make_two_node_workload


class TestEventTopics:
    def test_topics_are_distinct_per_target(self):
        assert accept_topic("a") != accept_topic("b")
        assert reject_topic("a") != accept_topic("a")
        assert trigger_topic("T", 1) != trigger_topic("T", 2)
        assert trigger_topic("T", 1) != trigger_topic("U", 1)

    def test_accept_event_reallocated_flag(self):
        from repro.ccm.events import AcceptEvent
        from repro.sched.task import Job

        task = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        job = Job(task, 0, 0.0, "app1")
        same = AcceptEvent(job, {0: "app1"}, "app1", "app1")
        moved = AcceptEvent(job, {0: "app2"}, "app1", "app2")
        assert not same.reallocated
        assert moved.reallocated


class TestRuntimeEnv:
    def test_subtask_instance_lookup_error(self):
        env, _containers = make_env()
        with pytest.raises(KeyError) as excinfo:
            env.subtask_instance("ghost", 0, "app1")
        assert "ghost" in str(excinfo.value)

    def test_cost_rng_is_stable_stream(self):
        env, _containers = make_env(seed=5)
        first = env.cost_rng
        assert env.cost_rng is first


class TestDrainSemantics:
    def build(self, **kwargs):
        kwargs.setdefault("cost_model", CostModel.zero())
        kwargs.setdefault("delay_model", ConstantDelay(0.001))
        return MiddlewareSystem(
            make_two_node_workload(), StrategyCombo.from_label("J_N_N"), **kwargs
        )

    def test_drain_lets_tail_jobs_complete(self):
        results = self.build(seed=1).run(duration=5.0, drain=True)
        assert results.metrics.completed_jobs == results.metrics.released_jobs

    def test_no_drain_may_leave_jobs_running(self):
        results = self.build(seed=1).run(duration=5.0, drain=False)
        assert results.metrics.completed_jobs <= results.metrics.released_jobs

    def test_drain_extends_duration_by_max_deadline(self):
        results = self.build(seed=1).run(duration=5.0, drain=True)
        # max deadline in the fixture workload is 1.0
        assert results.duration == pytest.approx(6.0)


class TestAcCachingWithPerTaskLb:
    def test_ac_per_job_lb_per_task_caches_assignment_not_decision(self):
        """AC=J + LB=T: every job is re-tested but the periodic task's
        placement is computed once and reused."""
        task = make_task(
            "P",
            TaskKind.PERIODIC,
            deadline=1.0,
            execs=(0.2,),
            homes=("app1",),
            replicas=[("app2",)],
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        system = MiddlewareSystem(
            workload,
            StrategyCombo.from_label("J_N_T"),
            cost_model=CostModel.zero(),
            delay_model=ConstantDelay(0.001),
        )
        system.run(duration=5.0, drain=False)
        # Tested every job...
        assert system.ac.admitted_jobs >= 4
        # ...but the LB computed the plan only once.
        assert system.lb.location_calls == 1

    def test_aperiodic_located_every_arrival_even_with_lb_per_task(self):
        task = make_task(
            "A",
            TaskKind.APERIODIC,
            deadline=1.0,
            execs=(0.1,),
            homes=("app1",),
            replicas=[("app2",)],
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        system = MiddlewareSystem(
            workload,
            StrategyCombo.from_label("J_N_T"),
            cost_model=CostModel.zero(),
            delay_model=ConstantDelay(0.001),
            seed=4,
            aperiodic_interarrival_factor=1.0,
        )
        results = system.run(duration=20.0)
        # Each aperiodic job is an independent single-release task: LB is
        # consulted for every admitted arrival.
        assert system.lb.location_calls == system.ac.admitted_jobs


class TestExamplesSmoke:
    @pytest.mark.parametrize(
        "script",
        [
            "examples/quickstart.py",
            "examples/config_engine_demo.py",
        ],
    )
    def test_example_runs_clean(self, script):
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, str(root / script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()

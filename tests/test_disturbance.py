"""Tests for disturbance injection and runtime speed changes."""

import pytest

from repro.cpu.processor import Processor
from repro.cpu.thread import WorkItem
from repro.errors import SimulationError
from repro.experiments.disturbance import (
    run_burst_scenario,
    run_slowdown_scenario,
)
from repro.sim.kernel import Simulator


class TestSetSpeed:
    def test_idle_speed_change(self):
        sim = Simulator()
        cpu = Processor(sim, "p")
        cpu.set_speed(2.0)
        done = []
        t = cpu.new_thread("t", 1.0)
        cpu.submit(t, WorkItem(4.0, lambda _: done.append(sim.now)))
        sim.run()
        assert done == [2.0]

    def test_running_item_retimed(self):
        sim = Simulator()
        cpu = Processor(sim, "p")
        done = []
        t = cpu.new_thread("t", 1.0)
        cpu.submit(t, WorkItem(4.0, lambda _: done.append(sim.now)))
        # After 2 s (2 units consumed), halve the speed: remaining 2 units
        # take 4 s -> completes at 6.
        sim.schedule(2.0, cpu.set_speed, 0.5)
        sim.run()
        assert done == [6.0]

    def test_speedup_mid_item(self):
        sim = Simulator()
        cpu = Processor(sim, "p")
        done = []
        t = cpu.new_thread("t", 1.0)
        cpu.submit(t, WorkItem(4.0, lambda _: done.append(sim.now)))
        sim.schedule(2.0, cpu.set_speed, 2.0)
        sim.run()
        assert done == [3.0]

    def test_invalid_speed_rejected(self):
        sim = Simulator()
        cpu = Processor(sim, "p")
        with pytest.raises(SimulationError):
            cpu.set_speed(0.0)


class TestBurstScenario:
    def test_burst_sheds_load_without_misses(self):
        result = run_burst_scenario(
            duration=40.0, burst_time=10.0, burst_jobs=25, seed=3
        )
        assert result.deadline_misses == 0, (
            "overload must become rejections, not missed deadlines"
        )
        assert result.rejected_jobs > 0, "the burst must exceed capacity"
        assert 0.0 <= result.accepted_utilization_ratio <= 1.0

    def test_burst_lowers_acceptance_vs_baseline(self):
        calm = run_burst_scenario(
            duration=40.0, burst_time=10.0, burst_jobs=0, seed=3
        )
        stormy = run_burst_scenario(
            duration=40.0, burst_time=10.0, burst_jobs=25, seed=3
        )
        assert (
            stormy.accepted_utilization_ratio
            < calm.accepted_utilization_ratio
        )


class TestSlowdownScenario:
    def test_slowdown_breaks_the_guarantee(self):
        result = run_slowdown_scenario(
            duration=40.0, slowdown_time=10.0, slow_factor=0.2, seed=3
        )
        assert result.deadline_misses > 0, (
            "violating the WCET assumption must surface as deadline misses"
        )

    def test_no_slowdown_keeps_guarantee(self):
        result = run_slowdown_scenario(
            duration=40.0, slowdown_time=10.0, slow_factor=1.0, seed=3
        )
        assert result.deadline_misses == 0

"""Unit tests for characteristics, Table 1 mapping, workload specs,
deployment plans, XML round-trips and plan validation."""

import random

import pytest

from repro.config.characteristics import (
    ApplicationCharacteristics,
    OverheadTolerance,
)
from repro.config.mapping import DEFAULT_COMBO, map_characteristics
from repro.config.plan import (
    ComponentInstance,
    Connection,
    DeploymentPlan,
    IMPL_AC,
    IMPL_LB,
    build_deployment_plan,
)
from repro.config.validation import validate_plan
from repro.config.workload_spec import (
    load_workload,
    parse_workload_json,
    parse_workload_text,
    workload_to_json,
)
from repro.config.xml_io import parse_xml, to_xml
from repro.core.strategies import StrategyCombo
from repro.errors import ConfigurationError, WorkloadSpecError

from tests.taskutil import make_two_node_workload


# ----------------------------------------------------------------------
# Characteristics questionnaire
# ----------------------------------------------------------------------
class TestCharacteristics:
    def test_paper_figure4_answers(self):
        chars = ApplicationCharacteristics.from_answers(
            {
                "job_skipping": "N",
                "replicated_components": "Y",
                "state_persistence": "Y",
                "overhead_tolerance": "PT",
            }
        )
        assert not chars.job_skipping
        assert chars.replicated_components
        assert chars.state_persistence
        assert chars.overhead_tolerance is OverheadTolerance.PER_TASK

    def test_flexible_yes_no_forms(self):
        chars = ApplicationCharacteristics.from_answers(
            {
                "job_skipping": "yes",
                "replicated_components": "1",
                "state_persistence": "FALSE",
            }
        )
        assert chars.job_skipping and chars.replicated_components
        assert not chars.state_persistence

    def test_bad_answer_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationCharacteristics.from_answers({"job_skipping": "maybe"})

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationCharacteristics.from_answers(
                {
                    "job_skipping": "Y",
                    "replicated_components": "Y",
                    "state_persistence": "N",
                    "overhead_tolerance": "LOTS",
                }
            )

    def test_describe_mentions_criteria(self):
        chars = ApplicationCharacteristics(True, True, False)
        text = chars.describe()
        assert "C1" in text and "C2" in text and "C3" in text


# ----------------------------------------------------------------------
# Table 1 mapping
# ----------------------------------------------------------------------
class TestMapping:
    def test_paper_example_maps_to_all_per_task(self):
        chars = ApplicationCharacteristics(
            job_skipping=False,
            replicated_components=True,
            state_persistence=True,
            overhead_tolerance=OverheadTolerance.PER_TASK,
        )
        combo, notes = map_characteristics(chars)
        assert combo.label == "T_T_T"
        assert notes == []

    def test_c1_drives_ac(self):
        base = dict(
            replicated_components=True,
            state_persistence=True,
            overhead_tolerance=OverheadTolerance.NONE,
        )
        yes, _ = map_characteristics(
            ApplicationCharacteristics(job_skipping=True, **base)
        )
        no, _ = map_characteristics(
            ApplicationCharacteristics(job_skipping=False, **base)
        )
        assert yes.ac.value == "J" and no.ac.value == "T"

    def test_c3_gates_lb(self):
        combo, notes = map_characteristics(
            ApplicationCharacteristics(True, False, False)
        )
        assert combo.lb.value == "N"

    def test_c2_picks_lb_granularity(self):
        stateful, _ = map_characteristics(
            ApplicationCharacteristics(True, True, True)
        )
        stateless, _ = map_characteristics(
            ApplicationCharacteristics(True, True, False)
        )
        assert stateful.lb.value == "T"
        assert stateless.lb.value == "J"

    def test_tolerance_drives_ir(self):
        for tol, expected in (
            (OverheadTolerance.NONE, "N"),
            (OverheadTolerance.PER_TASK, "T"),
            (OverheadTolerance.PER_JOB, "J"),
        ):
            combo, _ = map_characteristics(
                ApplicationCharacteristics(True, True, False, tol)
            )
            assert combo.ir.value == expected

    def test_invalid_request_clamped_with_note(self):
        # No job skipping (AC per task) + per-job resetting requested.
        combo, notes = map_characteristics(
            ApplicationCharacteristics(
                False, True, False, OverheadTolerance.PER_JOB
            )
        )
        assert combo.label == "T_T_J"
        assert combo.is_valid
        assert any("clamped" in note for note in notes)

    def test_mapping_always_valid(self):
        for skipping in (True, False):
            for replicated in (True, False):
                for stateful in (True, False):
                    for tol in OverheadTolerance:
                        combo, _ = map_characteristics(
                            ApplicationCharacteristics(
                                skipping, replicated, stateful, tol
                            )
                        )
                        assert combo.is_valid

    def test_default_combo_is_paper_default(self):
        assert DEFAULT_COMBO.label == "T_T_T"


# ----------------------------------------------------------------------
# Workload specification files
# ----------------------------------------------------------------------
class TestWorkloadSpec:
    def test_json_roundtrip(self):
        wl = make_two_node_workload()
        assert parse_workload_json(workload_to_json(wl)) == wl

    def test_json_rejects_garbage(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_json("{not json")
        with pytest.raises(WorkloadSpecError):
            parse_workload_json("[]")
        with pytest.raises(WorkloadSpecError):
            parse_workload_json('{"processors": ["a"]}')

    def test_text_format(self):
        wl = parse_workload_text(
            """
            # demo spec
            processors app1 app2
            manager mgr
            task P1 periodic deadline=1.0 period=1.0 phase=0.25
              subtask exec=0.05 on=app1 replicas=app2
              subtask exec=0.05 on=app2
            task A1 aperiodic deadline=0.5
              subtask exec=0.02 on=app2 replicas=app1
            """
        )
        assert wl.manager_node == "mgr"
        assert wl.task("P1").phase == 0.25
        assert wl.task("P1").subtasks[0].replicas == ("app2",)
        assert wl.task("A1").kind.value == "aperiodic"

    def test_text_rejects_subtask_before_task(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_text("processors a\nsubtask exec=1 on=a")

    def test_text_rejects_unknown_keyword(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_text("widgets a b c")

    def test_text_rejects_missing_deadline(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_text(
                "processors a\ntask T periodic period=1.0\n  subtask exec=0.1 on=a"
            )

    def test_text_task_without_subtasks_rejected(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_text("processors a\ntask T aperiodic deadline=1.0")

    def test_load_dispatches_on_extension(self, tmp_path):
        wl = make_two_node_workload()
        json_path = tmp_path / "w.json"
        json_path.write_text(workload_to_json(wl))
        assert load_workload(json_path) == wl
        text_path = tmp_path / "w.spec"
        text_path.write_text(
            "processors a\ntask T aperiodic deadline=1.0\n  subtask exec=0.1 on=a"
        )
        assert load_workload(text_path).task("T").deadline == 1.0


# ----------------------------------------------------------------------
# Deployment plans + XML
# ----------------------------------------------------------------------
class TestDeploymentPlan:
    def make_plan(self, label="J_T_T"):
        return build_deployment_plan(
            make_two_node_workload(), StrategyCombo.from_label(label)
        )

    def test_ac_always_present_lb_conditional(self):
        with_lb = self.make_plan("J_T_T")
        without_lb = self.make_plan("J_T_N")
        assert len(with_lb.instances_of(IMPL_AC)) == 1
        assert len(with_lb.instances_of(IMPL_LB)) == 1
        assert len(without_lb.instances_of(IMPL_LB)) == 0

    def test_te_and_ir_per_app_node(self):
        plan = self.make_plan()
        for node in ("app1", "app2"):
            names = {i.instance_id for i in plan.instances_on(node)}
            assert f"TE-{node}" in names and f"IR-{node}" in names

    def test_subtask_instances_cover_replicas(self):
        plan = self.make_plan()
        # P1 has 2 subtasks x 2 eligible nodes; A1 has 1 x 2.
        subtask_ids = [
            i.instance_id for i in plan.instances if "." in i.instance_id
        ]
        assert len(subtask_ids) == 6

    def test_combo_extracted_from_plan(self):
        assert self.make_plan("J_T_T").combo().label == "J_T_T"

    def test_priorities_follow_edms(self):
        plan = self.make_plan()
        p1 = plan.instance("P1.s0@app1").property_dict()["priority"]
        a1 = plan.instance("A1.s0@app1").property_dict()["priority"]
        assert a1 < p1  # A1 deadline 0.5 < P1 deadline 1.0

    def test_invalid_combo_rejected_at_build(self):
        from repro.errors import InvalidStrategyCombination

        with pytest.raises(InvalidStrategyCombination):
            self.make_plan("T_J_N")

    def test_xml_roundtrip(self):
        plan = self.make_plan()
        parsed = parse_xml(to_xml(plan))
        assert parsed == plan

    def test_xml_preserves_property_types(self):
        plan = self.make_plan()
        parsed = parse_xml(to_xml(plan))
        props = parsed.instance("P1.s0@app1").property_dict()
        assert isinstance(props["execution_time"], float)
        assert isinstance(props["subtask_index"], int)
        assert isinstance(props["task_id"], str)

    def test_xml_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            parse_xml("<notxml")
        with pytest.raises(ConfigurationError):
            parse_xml("<Wrong/>")

    def test_validate_accepts_generated_plan(self):
        plan = self.make_plan()
        workload = validate_plan(plan)
        assert workload == make_two_node_workload()

    def test_validate_rejects_tampered_ir_strategy(self):
        plan = self.make_plan("J_T_T")
        tampered_instances = tuple(
            inst
            if inst.instance_id != "IR-app1"
            else ComponentInstance.make(
                inst.instance_id,
                inst.implementation,
                inst.node,
                {**inst.property_dict(), "strategy": "J"},
            )
            for inst in plan.instances
        )
        tampered = DeploymentPlan(
            label=plan.label,
            manager_node=plan.manager_node,
            app_nodes=plan.app_nodes,
            instances=tampered_instances,
            connections=plan.connections,
            workload_json=plan.workload_json,
        )
        with pytest.raises(ConfigurationError):
            validate_plan(tampered)

    def test_validate_rejects_missing_lb_connection(self):
        plan = self.make_plan("J_T_T")
        pruned = DeploymentPlan(
            label=plan.label,
            manager_node=plan.manager_node,
            app_nodes=plan.app_nodes,
            instances=plan.instances,
            connections=tuple(
                c for c in plan.connections if c.name != "ac_locator"
            ),
            workload_json=plan.workload_json,
        )
        with pytest.raises(ConfigurationError):
            validate_plan(pruned)

    def test_validate_rejects_invalid_combo_in_plan(self):
        plan = self.make_plan("J_J_N")
        bad_instances = tuple(
            inst
            if inst.implementation != IMPL_AC
            else ComponentInstance.make(
                inst.instance_id,
                inst.implementation,
                inst.node,
                {**inst.property_dict(), "ac_strategy": "T"},
            )
            for inst in plan.instances
        )
        bad = DeploymentPlan(
            label=plan.label,
            manager_node=plan.manager_node,
            app_nodes=plan.app_nodes,
            instances=bad_instances,
            connections=plan.connections,
            workload_json=plan.workload_json,
        )
        from repro.errors import InvalidStrategyCombination

        with pytest.raises(InvalidStrategyCombination):
            validate_plan(bad)

    def test_connection_kind_validated(self):
        with pytest.raises(ConfigurationError):
            Connection("c", "telepathy", "a", "p", "b", "q")

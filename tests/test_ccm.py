"""Unit tests for the CCM-lite component model."""

import random

import pytest

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.container import Container
from repro.ccm.ports import EventSinkPort, EventSourcePort, Facet, Receptacle
from repro.ccm.repository import ComponentRepository
from repro.cpu.processor import Processor
from repro.errors import (
    AttributeConfigError,
    ComponentError,
    DeploymentError,
    PortError,
)
from repro.net.federation import FederatedEventChannel
from repro.net.latency import ConstantDelay
from repro.net.network import Network
from repro.sim.kernel import Simulator


class Widget(Component):
    ATTRIBUTES = {
        "rate": AttributeSpec(float, default=1.0, validator=lambda v: v > 0),
        "label": AttributeSpec(str, required=True),
        "count": AttributeSpec(int, default=0, mutable=True),
    }


def make_container(node="n1"):
    sim = Simulator()
    net = Network(sim, random.Random(0), ConstantDelay(0.001))
    fed = FederatedEventChannel(net)
    fed.add_node(node)
    cpu = Processor(sim, node)
    return Container(cpu, fed)


# ----------------------------------------------------------------------
# Attributes
# ----------------------------------------------------------------------
class TestAttributes:
    def test_defaults_applied(self):
        w = Widget("w")
        assert w.get_attribute("rate") == 1.0

    def test_set_and_get(self):
        w = Widget("w")
        w.set_attribute("rate", 2.5)
        assert w.get_attribute("rate") == 2.5

    def test_unknown_attribute_rejected(self):
        w = Widget("w")
        with pytest.raises(AttributeConfigError):
            w.set_attribute("bogus", 1)
        with pytest.raises(AttributeConfigError):
            w.get_attribute("bogus")

    def test_type_checked(self):
        w = Widget("w")
        with pytest.raises(AttributeConfigError):
            w.set_attribute("rate", "fast")

    def test_bool_rejected_where_int_expected(self):
        w = Widget("w")
        with pytest.raises(AttributeConfigError):
            w.set_attribute("count", True)

    def test_validator_enforced(self):
        w = Widget("w")
        with pytest.raises(AttributeConfigError):
            w.set_attribute("rate", -1.0)

    def test_set_configuration_bulk(self):
        w = Widget("w")
        w.set_configuration({"rate": 3.0, "label": "x"})
        assert w.get_attribute("label") == "x"

    def test_required_attribute_enforced_at_activation(self):
        container = make_container()
        w = Widget("w")
        container.install(w)
        with pytest.raises(AttributeConfigError):
            w.activate()

    def test_immutable_after_activation(self):
        container = make_container()
        w = Widget("w")
        w.set_attribute("label", "x")
        container.install(w)
        w.activate()
        with pytest.raises(AttributeConfigError):
            w.set_attribute("rate", 2.0)
        w.set_attribute("count", 5)  # mutable attribute still settable
        assert w.get_attribute("count") == 5

    def test_activate_requires_install(self):
        w = Widget("w")
        with pytest.raises(ComponentError):
            w.activate()


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
class TestContainer:
    def test_install_binds_component(self):
        container = make_container()
        w = Widget("w")
        container.install(w)
        assert w.container is container
        assert w.node == "n1"

    def test_double_install_rejected(self):
        container = make_container()
        w = Widget("w")
        container.install(w)
        with pytest.raises(ComponentError):
            container.install(w)

    def test_duplicate_name_rejected(self):
        container = make_container()
        container.install(Widget("w"))
        with pytest.raises(ComponentError):
            container.install(Widget("w"))

    def test_lookup(self):
        container = make_container()
        w = container.install(Widget("w"))
        assert container.lookup("w") is w
        with pytest.raises(ComponentError):
            container.lookup("zz")

    def test_activate_all(self):
        container = make_container()
        w = Widget("w")
        w.set_attribute("label", "x")
        container.install(w)
        container.activate_all()
        assert w.activated

    def test_uninstalled_component_accessors_fail(self):
        w = Widget("w")
        with pytest.raises(ComponentError):
            _ = w.node


# ----------------------------------------------------------------------
# Ports
# ----------------------------------------------------------------------
class TestPorts:
    def test_event_source_sink_roundtrip(self):
        container = make_container()
        w = container.install(Widget("w"))
        w.set_attribute("label", "x")
        got = []
        sink = EventSinkPort(w, "in", got.append)
        sink.subscribe("topic")
        source = EventSourcePort(w, "out")
        source.push("n1", "topic", 99)
        assert got == [99]
        assert sink.received == 1 and source.pushed == 1

    def test_uninstalled_source_push_fails(self):
        w = Widget("w")
        source = EventSourcePort(w, "out")
        with pytest.raises(PortError):
            source.push("n1", "t", 1)

    def test_uninstalled_sink_subscribe_fails(self):
        w = Widget("w")
        sink = EventSinkPort(w, "in", lambda p: None)
        with pytest.raises(PortError):
            sink.subscribe("t")

    def test_facet_receptacle(self):
        w = Widget("w")
        target = object()
        facet = Facet(w, "svc", target)
        receptacle = Receptacle(w, "uses_svc")
        assert not receptacle.connected
        receptacle.connect(facet)
        assert receptacle.connected
        assert receptacle() is target

    def test_receptacle_double_connect_rejected(self):
        w = Widget("w")
        receptacle = Receptacle(w, "r")
        receptacle.connect(Facet(w, "f", 1))
        with pytest.raises(PortError):
            receptacle.connect(Facet(w, "f2", 2))

    def test_unconnected_receptacle_deref_fails(self):
        w = Widget("w")
        receptacle = Receptacle(w, "r")
        with pytest.raises(PortError):
            receptacle()

    def test_generic_facet_hooks_default_to_error(self):
        w = Widget("w")
        with pytest.raises(ComponentError):
            w.provide_facet("anything")
        with pytest.raises(ComponentError):
            w.connect_receptacle("anything", None)


# ----------------------------------------------------------------------
# Repository
# ----------------------------------------------------------------------
class TestRepository:
    def test_register_and_create(self):
        repo = ComponentRepository()
        repo.register_class("Widget", Widget)
        w = repo.create("Widget", "inst1")
        assert isinstance(w, Widget) and w.name == "inst1"

    def test_duplicate_registration_rejected(self):
        repo = ComponentRepository()
        repo.register_class("Widget", Widget)
        with pytest.raises(DeploymentError):
            repo.register_class("Widget", Widget)

    def test_unknown_implementation_rejected(self):
        repo = ComponentRepository()
        with pytest.raises(DeploymentError):
            repo.create("Nope", "x")

    def test_factory_must_return_component(self):
        repo = ComponentRepository()
        repo.register("Bad", lambda name: object())
        with pytest.raises(DeploymentError):
            repo.create("Bad", "x")

    def test_contains_iter_len(self):
        repo = ComponentRepository()
        repo.register_class("A", Widget)
        repo.register_class("B", Widget)
        assert "A" in repo and "C" not in repo
        assert list(repo) == ["A", "B"]
        assert len(repo) == 2

"""Tests for the ``repro.api`` public surface.

Covers the strategy registry (name resolution + unknown-name errors),
Scenario validation (unknown/conflicting fields fail with
ConfigurationError), the JSON round trip (Scenario -> JSON -> Scenario ->
Session reproduces the direct-construction result exactly), RunResult
serialization, and the ExperimentSuite fan-out.
"""

import math

import pytest

from repro.api import (
    Burst,
    ExperimentSuite,
    MappingCell,
    RunResult,
    Scenario,
    Session,
    Slowdown,
    StatSnapshot,
    WorkloadSource,
    default_registry,
    delay_model_from_json,
    delay_model_to_json,
    workload_from_json,
    workload_to_json,
)
from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo, valid_combinations
from repro.errors import ConfigurationError
from repro.net.latency import (
    ConstantDelay,
    NormalDelay,
    TriangularDelay,
    UniformDelay,
)
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload


def _workload(seed=2008):
    return generate_random_workload(RngRegistry(seed).stream("wl"))


class TestRegistry:
    def test_all_valid_combos_resolve(self):
        registry = default_registry()
        for combo in valid_combinations():
            assert registry.combo(combo.label) == combo

    def test_aliases(self):
        registry = default_registry()
        assert registry.combo("default").label == "T_T_T"
        assert registry.combo("paper-best").label == "J_J_J"
        assert registry.combo("distributed").label == "J_N_N"

    def test_unknown_combo_raises(self):
        with pytest.raises(ConfigurationError, match="unknown strategy combo"):
            default_registry().combo("X_Y_Z")

    def test_invalid_combo_label_raises(self):
        # T_J_* is the paper's contradictory combination.
        with pytest.raises(ConfigurationError):
            default_registry().combo("T_J_N")

    def test_policies_resolve(self):
        registry = default_registry()
        assert registry.policy("aub", ["a", "b"]) is not None
        assert registry.policy(
            "deferrable_server", ["a"], server_utilization=0.2
        ) is not None

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown admission policy"):
            default_registry().policy("nope", ["a"])

    def test_bad_policy_params_raise(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            default_registry().policy("deferrable_server", ["a"], bogus=1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            default_registry().register_combo(
                "default", StrategyCombo.from_label("J_J_J")
            )


class TestScenarioValidation:
    def test_needs_workload_source(self):
        with pytest.raises(ConfigurationError, match="WorkloadSource"):
            Scenario(workload=_workload())

    def test_builder_requires_workload(self):
        with pytest.raises(ConfigurationError, match="workload source"):
            Scenario.builder().combo("J_J_J").build()

    def test_builder_rejects_two_sources(self):
        builder = Scenario.builder().workload(_workload())
        with pytest.raises(ConfigurationError, match="conflicting"):
            builder.random_workload(seed=1)

    def test_unknown_combo_rejected_at_build(self):
        with pytest.raises(ConfigurationError, match="unknown strategy combo"):
            Scenario.builder().workload(_workload()).combo("WAT").build()

    def test_bad_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            Scenario.builder().workload(_workload()).duration(0).build()

    def test_policy_conflicts_with_middleware_engine(self):
        with pytest.raises(ConfigurationError, match="replay engine"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()), policy="aub"
            )

    def test_replay_requires_policy(self):
        with pytest.raises(ConfigurationError, match="admission policy"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()), engine="replay"
            )

    def test_replay_rejects_disturbances(self):
        with pytest.raises(ConfigurationError, match="disturbances"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()),
                engine="replay",
                policy="aub",
                disturbances=(Burst(time=1.0, jobs=5),),
            )

    def test_distributed_requires_jnn(self):
        with pytest.raises(ConfigurationError, match="J_N_N"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()),
                engine="distributed",
                combo="J_J_J",
            )

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()), engine="magic"
            )

    def test_explicit_source_rejects_generator_fields(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            WorkloadSource(kind="explicit", workload=_workload(), seed=3)

    def test_generated_source_rejects_embedded_workload(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            WorkloadSource(kind="random", workload=_workload(), seed=3)

    def test_generated_source_needs_seed(self):
        with pytest.raises(ConfigurationError, match="seed"):
            WorkloadSource(kind="random")

    def test_bad_disturbance_values(self):
        with pytest.raises(ConfigurationError):
            Burst(time=-1.0, jobs=5)
        with pytest.raises(ConfigurationError):
            Slowdown(time=1.0, factor=0.0)

    def test_overlapping_burst_indices_rejected(self):
        builder = (
            Scenario.builder().workload(_workload())
            .burst(time=5.0, jobs=10).burst(time=6.0, jobs=10)
        )
        with pytest.raises(ConfigurationError, match="overlapping"):
            builder.build()

    def test_disjoint_burst_indices_accepted(self):
        scenario = (
            Scenario.builder().workload(_workload())
            .burst(time=5.0, jobs=10)
            .burst(time=6.0, jobs=10, base_index=200_000)
            .build()
        )
        assert len(scenario.disturbances) == 2

    def test_explicit_source_rejects_generator_index_stream(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            WorkloadSource(kind="explicit", workload=_workload(), index=3)
        with pytest.raises(ConfigurationError, match="conflicting"):
            WorkloadSource(kind="explicit", workload=_workload(), stream="x")

    def test_unknown_json_fields_rejected(self):
        scenario = Scenario.builder().random_workload(seed=1).build()
        data = scenario.to_json()
        data["speed_hack"] = True
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            Scenario.from_json(data)

    def test_unknown_workload_json_fields_rejected(self):
        data = workload_to_json(_workload())
        data["tasks"][0]["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown task field"):
            workload_from_json(data)

    def test_unknown_delay_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown delay model"):
            delay_model_from_json({"type": "wormhole", "delay": 1.0})

    def test_incomplete_delay_model_rejected(self):
        with pytest.raises(ConfigurationError, match="incomplete uniform"):
            delay_model_from_json({"type": "uniform"})

    def test_policy_params_normalized_for_round_trip(self):
        unsorted = Scenario(
            workload=WorkloadSource.explicit(_workload()),
            engine="replay",
            policy="deferrable_server",
            policy_params=(
                ("server_utilization", 0.3),
                ("server_period", 0.1),
            ),
        )
        assert unsorted.policy_params == (
            ("server_period", 0.1),
            ("server_utilization", 0.3),
        )
        assert Scenario.from_json_str(unsorted.to_json_str()) == unsorted

    def test_duplicate_policy_params_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate policy"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()),
                engine="replay",
                policy="deferrable_server",
                policy_params=(
                    ("server_period", 0.1),
                    ("server_period", 0.2),
                ),
            )

    def test_custom_arrival_stream_rejected_off_replay(self):
        with pytest.raises(ConfigurationError, match="arrival_stream"):
            Scenario(
                workload=WorkloadSource.explicit(_workload()),
                arrival_stream="custom",
            )


class TestJsonRoundTrip:
    def test_workload_round_trip(self):
        workload = _workload()
        assert workload_from_json(workload_to_json(workload)) == workload

    @pytest.mark.parametrize(
        "model",
        [
            ConstantDelay(0.001),
            UniformDelay(0.0, 0.002),
            TriangularDelay(0.0, 0.001, 0.003),
            NormalDelay(0.001, 0.0002, floor=0.0),
        ],
    )
    def test_delay_model_round_trip(self, model):
        restored = delay_model_from_json(delay_model_to_json(model))
        assert repr(restored) == repr(model)

    def test_full_scenario_round_trip(self):
        scenario = (
            Scenario.builder()
            .random_workload(seed=5, index=2, params=RandomWorkloadParams(
                n_processors=3, min_subtasks=1, max_subtasks=3))
            .combo("J_T_N")
            .duration(42.0)
            .seed(9)
            .cost_model(CostModel().scaled(2.0))
            .delay_model(ConstantDelay(0.002))
            .interarrival_factor(1.5)
            .burst(time=10.0, jobs=7)
            .slowdown(time=20.0, factor=0.5)
            .label("everything")
            .build()
        )
        assert Scenario.from_json_str(scenario.to_json_str()) == scenario

    def test_replay_scenario_round_trip(self):
        scenario = (
            Scenario.builder()
            .workload(_workload())
            .replay("deferrable_server", server_utilization=0.25,
                    server_period=0.2)
            .duration(30.0)
            .seed(4)
            .arrival_stream("arrivals:3")
            .build()
        )
        assert Scenario.from_json_str(scenario.to_json_str()) == scenario

    @pytest.mark.parametrize("label", ["T_N_N", "T_T_T", "J_N_J", "J_J_J"])
    def test_round_trip_matches_direct_construction(self, label):
        """Scenario -> JSON -> Scenario -> Session == direct
        MiddlewareSystem construction, bit for bit."""
        workload = _workload(seed=31)
        scenario = (
            Scenario.builder()
            .workload(workload)
            .combo(label)
            .duration(20.0)
            .seed(13)
            .build()
        )
        restored = Scenario.from_json_str(scenario.to_json_str())
        api_result = Session(restored).run()

        direct = MiddlewareSystem(
            workload, StrategyCombo.from_label(label), seed=13
        ).run(20.0)
        assert api_result.accepted_utilization_ratio == (
            direct.metrics.accepted_utilization_ratio
        )
        assert api_result.deadline_misses == direct.metrics.latency.deadline_misses
        assert api_result.arrived_jobs == direct.metrics.arrived_jobs
        assert api_result.events_executed == direct.events_executed
        assert api_result.messages_sent == direct.messages_sent
        assert api_result.cpu_utilization == direct.cpu_utilization

    def test_generated_source_reproduces_shared_stream_draw(self):
        gen = RngRegistry(77).stream("task_sets")
        drawn = [generate_random_workload(gen) for _ in range(3)]
        for index, expected in enumerate(drawn):
            source = WorkloadSource.random(seed=77, index=index)
            assert source.materialize() == expected

    def test_run_result_round_trip(self):
        scenario = (
            Scenario.builder().workload(_workload()).combo("J_J_J")
            .duration(10.0).seed(2).build()
        )
        result = Session(scenario).run()
        restored = RunResult.from_json(result.to_json())
        assert restored == result
        assert restored.overhead_rows() == result.overhead_rows()

    def test_stat_snapshot_empty_round_trip(self):
        empty = StatSnapshot()
        restored = StatSnapshot.from_json(empty.to_json())
        assert restored.count == 0
        assert math.isinf(restored.minimum)


class TestSession:
    def test_session_runs_once(self):
        scenario = (
            Scenario.builder().workload(_workload()).duration(5.0).build()
        )
        session = Session(scenario)
        session.run()
        with pytest.raises(ConfigurationError, match="already ran"):
            session.run()

    def test_replay_has_no_deployment(self):
        scenario = (
            Scenario.builder().workload(_workload())
            .replay("aub").duration(5.0).build()
        )
        with pytest.raises(ConfigurationError, match="no deployment"):
            Session(scenario).deploy()

    def test_via_dance_matches_direct(self):
        workload = _workload(seed=8)
        scenario = (
            Scenario.builder().workload(workload).combo("J_J_T")
            .duration(15.0).seed(6).build()
        )
        direct = Session(scenario).run()
        via_dance = Session(scenario, via_dance=True).run()
        assert via_dance.accepted_utilization_ratio == (
            direct.accepted_utilization_ratio
        )
        assert via_dance.arrived_jobs == direct.arrived_jobs
        assert via_dance.deadline_misses == direct.deadline_misses

    def test_via_dance_rejects_distributed(self):
        scenario = (
            Scenario.builder().workload(_workload())
            .distributed().duration(5.0).build()
        )
        with pytest.raises(ConfigurationError, match="middleware scenarios"):
            Session(scenario, via_dance=True)

    def test_distributed_scenario_runs(self):
        scenario = (
            Scenario.builder().workload(_workload(seed=3))
            .distributed().duration(10.0).seed(1).build()
        )
        result = Session(scenario).run()
        assert result.engine == "distributed"
        assert 0.0 <= result.accepted_utilization_ratio <= 1.0
        assert result.reserve_messages > 0

    def test_burst_disturbance_unknown_task_rejected(self):
        scenario = (
            Scenario.builder().workload(_workload())
            .burst(time=1.0, jobs=3, task_id="ghost").duration(5.0).build()
        )
        with pytest.raises(Exception):
            Session(scenario).run()

    def test_resolved_burst_overlap_rejected_at_deploy(self):
        # None resolves to the first aperiodic task at deploy time — a
        # second burst naming that task explicitly collides on job keys
        # even though literal task_id fields differ.
        workload = _workload()
        first_aperiodic = workload.aperiodic_tasks[0].task_id
        scenario = (
            Scenario.builder().workload(workload)
            .burst(time=1.0, jobs=5)
            .burst(time=2.0, jobs=5, task_id=first_aperiodic)
            .duration(5.0)
            .build()
        )
        with pytest.raises(ConfigurationError, match="overlapping"):
            Session(scenario).deploy()


class TestExperimentSuite:
    def test_results_order_is_worker_invariant(self):
        workload = _workload(seed=21)
        suite = ExperimentSuite(
            name="order",
            cells=tuple(
                Scenario.builder().workload(workload).combo(label)
                .duration(8.0).seed(5).build()
                for label in ("T_N_N", "J_N_N", "J_J_J")
            ),
        )
        serial = [r.to_json() for r in suite.run_results(n_workers=1)]
        parallel = [r.to_json() for r in suite.run_results(n_workers=3)]
        assert serial == parallel
        assert [r["combo_label"] for r in serial] == ["T_N_N", "J_N_N", "J_J_J"]

    def test_mixed_suite_dispatches_both_cell_kinds(self):
        suite = ExperimentSuite(
            name="mixed",
            cells=(
                Scenario.builder().workload(_workload()).duration(5.0).build(),
                MappingCell(
                    category="demo",
                    job_skipping=True,
                    replicated_components=True,
                    state_persistence=False,
                    overhead_tolerance="PJ",
                ),
            ),
        )
        run_result, row = suite.run(n_workers=1)
        assert isinstance(run_result, RunResult)
        assert row.combo_label == "J_J_J"

    def test_run_results_rejects_mapping_cells_before_running(self):
        ran = []
        suite = ExperimentSuite(
            name="mapped",
            cells=(
                Scenario.builder().workload(_workload()).duration(5.0).build(),
                MappingCell(
                    category="demo",
                    job_skipping=True,
                    replicated_components=True,
                    state_persistence=False,
                    overhead_tolerance="PJ",
                ),
            ),
        )
        original_run = ExperimentSuite.run
        ExperimentSuite.run = lambda self, n_workers=None: ran.append(True)
        try:
            with pytest.raises(ConfigurationError, match="non-scenario"):
                suite.run_results(n_workers=1)
        finally:
            ExperimentSuite.run = original_run
        assert not ran, "mixed suite must be rejected before any cell runs"

    def test_suite_json_round_trip(self):
        suite = ExperimentSuite(
            name="round",
            description="both cell kinds",
            cells=(
                Scenario.builder().random_workload(seed=3).duration(6.0).build(),
                MappingCell(
                    category="demo",
                    job_skipping=False,
                    replicated_components=True,
                    state_persistence=True,
                    overhead_tolerance="PT",
                ),
            ),
        )
        restored = ExperimentSuite.from_json(suite.to_json())
        assert restored == suite

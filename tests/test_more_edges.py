"""Additional edge coverage: XML escaping, federation broadcast timing,
CPU accounting after speed changes, deployment kwargs passthrough."""

import random

import pytest

from repro.config.plan import ComponentInstance, DeploymentPlan
from repro.config.xml_io import parse_xml, to_xml
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.config.dance import DeploymentEngine
from repro.config.plan import build_deployment_plan
from repro.cpu.processor import Processor
from repro.cpu.thread import WorkItem
from repro.net.federation import FederatedEventChannel
from repro.net.latency import ConstantDelay
from repro.net.network import Network
from repro.sim.kernel import Simulator

from tests.taskutil import make_two_node_workload


class TestXmlEscaping:
    def test_special_characters_in_properties_roundtrip(self):
        plan = DeploymentPlan(
            label="weird & <plan>",
            manager_node="mgr",
            app_nodes=("n1",),
            instances=(
                ComponentInstance.make(
                    "inst<1>",
                    "impl&co",
                    "n1",
                    {"note": "a < b & c > d", "count": 3, "ratio": 0.5},
                ),
            ),
            connections=(),
            workload_json="{}",
        )
        parsed = parse_xml(to_xml(plan))
        assert parsed.label == "weird & <plan>"
        inst = parsed.instance("inst<1>")
        props = inst.property_dict()
        assert props["note"] == "a < b & c > d"
        assert props["count"] == 3
        assert props["ratio"] == 0.5

    def test_unencodable_property_rejected(self):
        from repro.errors import ConfigurationError

        plan = DeploymentPlan(
            label="p",
            manager_node="mgr",
            app_nodes=("n1",),
            instances=(
                ComponentInstance.make("i", "impl", "n1", {"bad": [1, 2]}),
            ),
            connections=(),
            workload_json="{}",
        )
        with pytest.raises(ConfigurationError):
            to_xml(plan)


class TestFederationBroadcastTiming:
    def test_remote_subscribers_receive_after_delay_local_instantly(self):
        sim = Simulator()
        net = Network(sim, random.Random(0), ConstantDelay(0.01))
        fed = FederatedEventChannel(net)
        for node in ("a", "b"):
            fed.add_node(node)
        arrivals = []
        fed.subscribe("a", "t", lambda p: arrivals.append(("a", sim.now)))
        fed.subscribe("b", "t", lambda p: arrivals.append(("b", sim.now)))
        fed.publish("a", "t", "x")
        sim.run()
        assert ("a", 0.0) in arrivals
        assert ("b", 0.01) in arrivals


class TestCpuAccountingAfterSpeedChange:
    def test_busy_fraction_reflects_stretched_execution(self):
        sim = Simulator()
        cpu = Processor(sim, "p")
        t = cpu.new_thread("t", 1.0)
        cpu.submit(t, WorkItem(2.0))
        sim.schedule(1.0, cpu.set_speed, 0.5)  # remaining 1 unit takes 2 s
        sim.run(until=4.0)
        # Busy from 0 to 3, idle 3-4.
        assert cpu.utilization(4.0) == pytest.approx(0.75)


class TestDeploymentKwargs:
    def test_engine_passes_runtime_options_through(self):
        workload = make_two_node_workload()
        plan = build_deployment_plan(workload, StrategyCombo.from_label("J_N_N"))
        system = DeploymentEngine().deploy(
            plan,
            seed=3,
            cost_model=CostModel.zero(),
            delay_model=ConstantDelay(0.002),
            aperiodic_interarrival_factor=1.5,
        )
        assert system.cost_model.admission_test == 0.0
        assert system.aperiodic_interarrival_factor == 1.5
        assert system.network.default_delay.delay == 0.002

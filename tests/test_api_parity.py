"""Parity tests: scenario-based experiments == pre-refactor serial paths.

Every experiment module now constructs its runs through ``repro.api``
scenarios executed by the shared parallel runner.  These tests pin the
refactor down: at fixed seeds the new path must produce **identical**
outputs (exact float equality, not approx) to the direct-construction
serial code it replaced — per figure, and for any worker count.

The reference implementations are the legacy cell functions retained in
:mod:`repro.experiments.runner` (``middleware_cell``, ``overhead_cell``,
``replay_cell``) plus inline serial loops that mirror the old module
bodies line for line.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo, valid_combinations
from repro.experiments.ablation import run_aub_vs_deferrable
from repro.experiments.disturbance import (
    run_burst_scenario,
    run_disturbance_suite,
    run_slowdown_scenario,
)
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import (
    middleware_cell,
    overhead_cell,
    replay_cell,
    run_combo_grid,
)
from repro.experiments.sensitivity import (
    sweep_load,
    sweep_network_delay,
    sweep_overhead,
)
from repro.metrics.overhead import ALL_ROWS, OverheadAccounting
from repro.net.latency import ConstantDelay
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.imbalanced import generate_imbalanced_workload

SEED = 7
DURATION = 20.0


def _random_sets(seed, n, imbalanced=False):
    gen = RngRegistry(seed).stream("task_sets")
    generate = generate_imbalanced_workload if imbalanced else (
        generate_random_workload
    )
    return [generate(gen) for _ in range(n)]


class TestFigure5Parity:
    def test_identical_to_serial_reference(self):
        combos = [StrategyCombo.from_label(l) for l in ("T_N_N", "J_T_J", "J_J_J")]
        workloads = _random_sets(SEED, 2)
        ref_sets, ref_misses = run_combo_grid(
            workloads, combos, SEED, DURATION, None, 2.0, n_workers=1
        )
        result = run_figure5(
            duration=DURATION,
            seed=SEED,
            combos=combos,
            workloads=workloads,
            n_workers=2,
        )
        assert result.per_combo_sets == ref_sets
        assert result.deadline_misses == ref_misses


class TestFigure6Parity:
    def test_identical_to_serial_reference(self):
        combos = [StrategyCombo.from_label(l) for l in ("J_J_N", "J_J_T")]
        workloads = _random_sets(SEED, 2, imbalanced=True)
        ref_sets, ref_misses = run_combo_grid(
            workloads, combos, SEED, DURATION, None, 2.0, n_workers=1
        )
        result = run_figure6(
            duration=DURATION,
            seed=SEED,
            combos=combos,
            workloads=workloads,
            n_workers=2,
        )
        assert result.per_combo_sets == ref_sets
        assert result.deadline_misses == ref_misses


class TestFigure8Parity:
    def test_identical_to_serial_reference(self):
        # The old module body, line for line: two overhead cells merged
        # in fixed no-LB-then-LB order.
        params = RandomWorkloadParams(n_processors=3, min_subtasks=1, max_subtasks=3)
        gen = RngRegistry(SEED).stream("task_sets")
        workload = generate_random_workload(gen, params)
        merged = OverheadAccounting()
        outcomes = [
            overhead_cell(workload, label, SEED, DURATION, None, 2.0)
            for label in ("J_J_N", "J_J_J")
        ]
        for accounting, _stats in outcomes:
            for name in ALL_ROWS:
                merged.series(name).merge(accounting.series(name))
        for _accounting, stats in outcomes:
            merged.series("communication_delay").merge(stats)

        result = run_figure8(duration=DURATION, seed=SEED, n_workers=2)
        assert [r.as_tuple() for r in result.rows] == [
            r.as_tuple() for r in merged.rows()
        ]


class TestAblationParity:
    def test_identical_to_serial_reference(self):
        workloads = _random_sets(11, 3)
        reference = [
            replay_cell(w, i, 11, 40.0, 2.0, 0.3, 0.1)
            for i, w in enumerate(workloads)
        ]
        result = run_aub_vs_deferrable(
            n_sets=3, duration=40.0, seed=11, n_workers=3
        )
        assert result.aub_ratios == [r[0] for r in reference]
        assert result.ds_ratios == [r[1] for r in reference]


class TestSensitivityParity:
    """The ROADMAP item: sensitivity cells through the parallel runner
    with per-cell deterministic seeds, bit-identical for any workers."""

    def test_load_sweep_identical_to_direct_loop(self):
        factors = (4.0, 1.0)
        workload = generate_random_workload(RngRegistry(3).stream("wl"))
        combo = StrategyCombo.from_label("J_J_J")
        reference = []
        for factor in factors:
            system = MiddlewareSystem(
                workload, combo, seed=3, aperiodic_interarrival_factor=factor
            )
            reference.append(
                (factor, system.run(DURATION).accepted_utilization_ratio)
            )
        for workers in (1, 2):
            result = sweep_load(
                factors=factors, duration=DURATION, seed=3, n_workers=workers
            )
            assert result.points == reference

    def test_overhead_sweep_identical_to_direct_loop(self):
        scales = (0.0, 10.0)
        workload = generate_random_workload(RngRegistry(3).stream("wl"))
        combo = StrategyCombo.from_label("J_J_J")
        reference = []
        for scale in scales:
            cost = CostModel.zero() if scale == 0 else CostModel().scaled(scale)
            system = MiddlewareSystem(workload, combo, cost_model=cost, seed=3)
            reference.append(
                (scale, system.run(DURATION).accepted_utilization_ratio)
            )
        for workers in (1, 2):
            result = sweep_overhead(
                scales=scales, duration=DURATION, seed=3, n_workers=workers
            )
            assert result.points == reference

    def test_delay_sweep_identical_to_direct_loop(self):
        delays = (0.001, 0.05)
        workload = generate_random_workload(RngRegistry(3).stream("wl"))
        combo = StrategyCombo.from_label("J_J_J")
        reference = []
        for delay in delays:
            system = MiddlewareSystem(
                workload, combo, seed=3, delay_model=ConstantDelay(delay)
            )
            run = system.run(DURATION)
            reference.append(
                (
                    run.accepted_utilization_ratio,
                    run.metrics.latency.response_times.mean,
                    run.metrics.latency.deadline_misses,
                )
            )
        for workers in (1, 2):
            points = sweep_network_delay(
                delays=delays, duration=DURATION, seed=3, n_workers=workers
            )
            assert [
                (p.accepted_utilization_ratio, p.mean_response, p.deadline_misses)
                for p in points
            ] == reference


class TestDisturbanceParity:
    """The other half of the ROADMAP item: disturbance scenarios through
    the parallel runner, identical for any worker count."""

    def test_suite_matches_single_runs(self):
        singles = [
            run_burst_scenario(duration=30.0, seed=3).to_json(),
            run_slowdown_scenario(duration=30.0, seed=3).to_json(),
        ]
        for workers in (1, 2):
            suite = run_disturbance_suite(
                duration=30.0, seed=3, n_workers=workers
            )
            assert [r.to_json() for r in suite] == singles

    def test_burst_matches_direct_construction(self):
        # The old run_burst_scenario body, inline.
        workload = generate_random_workload(RngRegistry(3).stream("wl"))
        system = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_J_N"), seed=3
        )
        alert = workload.aperiodic_tasks[0]
        for i in range(25):
            arrival = 10.0 + i * 1e-3
            system.sim.schedule_at(
                arrival, system._arrive, alert, 100_000 + i, arrival
            )
        reference = system.run(30.0)

        result = run_burst_scenario(
            duration=30.0, burst_time=10.0, burst_jobs=25, seed=3
        )
        assert result.accepted_utilization_ratio == (
            reference.metrics.accepted_utilization_ratio
        )
        assert result.deadline_misses == reference.metrics.latency.deadline_misses
        assert result.released_jobs == reference.metrics.released_jobs
        assert result.rejected_jobs == reference.metrics.rejected_jobs

    def test_slowdown_matches_direct_construction(self):
        workload = generate_random_workload(RngRegistry(3).stream("wl"))
        system = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), seed=3
        )

        def throttle():
            for node in workload.app_nodes:
                system.processors[node].set_speed(0.2)

        system.sim.schedule_at(10.0, throttle)
        reference = system.run(30.0)

        result = run_slowdown_scenario(
            duration=30.0, slowdown_time=10.0, slow_factor=0.2, seed=3
        )
        assert result.accepted_utilization_ratio == (
            reference.metrics.accepted_utilization_ratio
        )
        assert result.deadline_misses == reference.metrics.latency.deadline_misses


class TestFullGridWorkerInvariance:
    def test_figure5_all_combos_worker_invariant(self):
        a = run_figure5(n_sets=1, duration=10.0, seed=5, n_workers=1)
        b = run_figure5(n_sets=1, duration=10.0, seed=5, n_workers=4)
        assert a.per_combo_sets == b.per_combo_sets
        assert len(a.per_combo) == len(valid_combinations())

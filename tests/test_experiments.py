"""Integration tests for the experiment runners (scaled-down versions).

Each test asserts the *shape* of the paper's findings, not absolute
numbers: those depend on the authors' testbed and undisclosed load rates.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.experiments import (
    run_aub_vs_deferrable,
    run_figure5,
    run_figure6,
    run_figure8,
    run_table1,
)
from repro.experiments.report import bar_chart, format_table
from repro.experiments.table1 import format_rows
from repro.metrics.overhead import PAPER_FIGURE8_USEC


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(n_sets=3, duration=40.0, seed=7)


@pytest.fixture(scope="module")
def fig6():
    return run_figure6(n_sets=3, duration=40.0, seed=7)


class TestFigure5:
    def test_covers_all_15_combos(self, fig5):
        assert len(fig5.per_combo) == 15

    def test_ratios_are_probabilities(self, fig5):
        assert all(0.0 <= v <= 1.0 for v in fig5.per_combo.values())

    def test_ir_per_job_significantly_outperforms(self, fig5):
        """Paper: enabling IR per job (*_J_*) significantly outperforms
        IR per task (*_T_*) and no IR (*_N_*)."""
        groups = fig5.by_ir_strategy()
        assert groups["J"] > groups["T"] + 0.05
        assert groups["J"] > groups["N"] + 0.05

    def test_j_j_combos_are_top_tier(self, fig5):
        """Paper: J_J_* outperforms all other configurations."""
        jj = [fig5.per_combo[l] for l in ("J_J_N", "J_J_T", "J_J_J")]
        others = [
            v for l, v in fig5.per_combo.items() if not l.startswith("J_J")
        ]
        assert min(jj) > max(others) - 0.05  # top tier (ties within noise)
        assert fig5.best_combo().startswith("J_J")

    def test_no_deadline_misses(self, fig5):
        """AUB admission guarantees admitted jobs meet deadlines."""
        assert fig5.deadline_misses == 0

    def test_format_renders_all_labels(self, fig5):
        text = fig5.format()
        for label in fig5.per_combo:
            assert label in text


class TestFigure6:
    def test_lb_per_task_significantly_beats_no_lb(self, fig6):
        """Paper: LB per task provides a significant improvement over no
        load balancing under imbalance."""
        means = fig6.lb_means()
        assert means["T"] > means["N"] + 0.1

    def test_lb_per_job_close_to_per_task(self, fig6):
        """Paper: not much difference between LB per task and per job."""
        means = fig6.lb_means()
        assert abs(means["J"] - means["T"]) < 0.1

    def test_groups_structure(self, fig6):
        groups = fig6.lb_groups()
        assert len(groups) == 5  # (AC, IR) pairs: T_N, T_T, J_N, J_T, J_J
        for _key, (n, t, j) in groups.items():
            assert 0.0 <= n <= 1.0 and 0.0 <= t <= 1.0 and 0.0 <= j <= 1.0

    def test_no_deadline_misses(self, fig6):
        assert fig6.deadline_misses == 0


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_figure8(duration=30.0, seed=7)

    def test_all_rows_populated(self, fig8):
        names = {row.name for row in fig8.rows}
        assert names == set(PAPER_FIGURE8_USEC)

    def test_all_service_delays_below_two_ms(self, fig8):
        """The paper's headline overhead claim."""
        assert fig8.max_service_delay_usec() < 2000.0

    def test_means_within_25_percent_of_paper(self, fig8):
        for row in fig8.rows:
            paper_mean, _paper_max = PAPER_FIGURE8_USEC[row.name]
            assert row.mean_usec == pytest.approx(paper_mean, rel=0.25), row.name

    def test_realloc_costs_more_than_no_realloc(self, fig8):
        realloc = fig8.row("ac_with_lb_realloc")
        no_realloc = fig8.row("ac_with_lb_no_realloc")
        assert realloc.mean_usec > no_realloc.mean_usec

    def test_ir_ac_side_is_tiny(self, fig8):
        assert fig8.row("ir_ac_side").mean_usec < 25.0

    def test_format_contains_paper_reference(self, fig8):
        assert "paper mean/max" in fig8.format()


class TestTable1:
    def test_all_categories_map_to_valid_combos(self):
        rows = run_table1()
        assert len(rows) >= 5
        for row in rows:
            assert StrategyCombo.from_label(row.combo_label).is_valid

    def test_critical_control_gets_per_task_ac(self):
        rows = {r.category: r for r in run_table1()}
        critical = rows["critical control (fail-safe chain)"]
        assert critical.combo_label.startswith("T_")

    def test_streaming_gets_per_job_everything(self):
        rows = {r.category: r for r in run_table1()}
        streaming = rows["video streaming / loss-tolerant sensing"]
        assert streaming.combo_label == "J_J_J"

    def test_unreplicated_gets_no_lb(self):
        rows = {r.category: r for r in run_table1()}
        fixed = rows["fixed-sensor pipeline (no replicas)"]
        assert fixed.combo_label.endswith("_N")

    def test_clamp_notes_surface(self):
        rows = {r.category: r for r in run_table1()}
        clamped = rows["critical + per-job resetting requested"]
        assert clamped.notes

    def test_format(self):
        assert "Table 1" in format_rows(run_table1())


class TestAblation:
    def test_policies_comparable_at_moderate_load(self):
        result = run_aub_vs_deferrable(n_sets=4, duration=60.0, seed=3)
        assert 0.0 < result.aub_mean <= 1.0
        assert 0.0 < result.ds_mean <= 1.0
        # "Comparable performance": same order of magnitude.
        assert result.aub_mean > 0.3

    def test_format(self):
        result = run_aub_vs_deferrable(n_sets=2, duration=30.0, seed=3)
        assert "Deferrable Server" in result.format()


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text

    def test_bar_chart_scales(self):
        text = bar_chart({"x": 0.5, "yy": 1.0}, width=10)
        assert "|#####     |" in text
        assert "|##########|" in text


class TestParallelRunner:
    """The multiprocessing fan-out must be bit-identical to a serial run
    and degrade gracefully when parallelism is unavailable."""

    def test_resolve_workers_precedence(self, monkeypatch):
        from repro.experiments import resolve_workers

        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2  # explicit argument wins
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers() >= 1

    def test_run_cells_preserves_order(self):
        from repro.experiments import run_cells

        # pow is picklable under every start method.
        cells = [(i, 2, None) for i in range(7)]
        assert run_cells(pow, cells, n_workers=3) == [i * i for i in range(7)]
        assert run_cells(pow, cells, n_workers=1) == [i * i for i in range(7)]

    def test_run_cells_cost_ordered_dispatch_is_invisible(self):
        """A custom cost key reshuffles submission, never results."""
        from repro.experiments import run_cells

        cells = [(i, 2, None) for i in range(9)]
        # Perverse estimate (cheapest first) must still return in order.
        results = run_cells(
            pow, cells, n_workers=4, cost_key=lambda cell: -cell[0]
        )
        assert results == [i * i for i in range(9)]

    def test_estimate_cell_cost_orders_heterogeneous_scenarios(self):
        from repro.api import Scenario
        from repro.api.scenario import WorkloadSource
        from repro.experiments.runner import estimate_cell_cost
        from repro.workloads.generator import RandomWorkloadParams

        small = Scenario(
            workload=WorkloadSource.random(
                seed=1, params=RandomWorkloadParams(n_periodic=2, n_aperiodic=2)
            ),
            duration=5.0,
        )
        large = Scenario(
            workload=WorkloadSource.random(
                seed=1, params=RandomWorkloadParams(n_periodic=9, n_aperiodic=9)
            ),
            duration=60.0,
        )
        assert estimate_cell_cost((large,)) > estimate_cell_cost((small,))
        # Unrecognized cells get a neutral constant (stable order).
        assert estimate_cell_cost((1, "x", None)) == 1.0

    def test_figure5_parallel_bit_identical_to_serial(self):
        combos = [StrategyCombo.from_label(l) for l in ("J_N_N", "J_J_J", "T_T_T")]
        serial = run_figure5(
            n_sets=2, duration=10.0, seed=11, combos=combos, n_workers=1
        )
        parallel = run_figure5(
            n_sets=2, duration=10.0, seed=11, combos=combos, n_workers=4
        )
        assert serial.per_combo == parallel.per_combo
        assert serial.per_combo_sets == parallel.per_combo_sets
        assert serial.deadline_misses == parallel.deadline_misses

    def test_ablation_parallel_bit_identical_to_serial(self):
        serial = run_aub_vs_deferrable(n_sets=3, duration=20.0, seed=5, n_workers=1)
        parallel = run_aub_vs_deferrable(n_sets=3, duration=20.0, seed=5, n_workers=3)
        assert serial.aub_ratios == parallel.aub_ratios
        assert serial.ds_ratios == parallel.ds_ratios

    def test_table1_routes_through_runner(self):
        rows_serial = run_table1(n_workers=1)
        rows_parallel = run_table1(n_workers=2)
        assert [r.combo_label for r in rows_serial] == [
            r.combo_label for r in rows_parallel
        ]

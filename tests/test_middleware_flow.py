"""Integration tests: end-to-end job flow through the middleware.

These tests use tiny hand-built workloads with the zero-overhead cost
model and a constant network delay so exact timing can be asserted.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.errors import ConfigurationError, InvalidStrategyCombination
from repro.net.latency import ConstantDelay
from repro.sched.task import TaskKind
from repro.workloads.model import Workload

from tests.taskutil import make_task

DELAY = 0.001  # constant one-way network delay for exact-timing tests


def build(workload, label, **kwargs):
    kwargs.setdefault("cost_model", CostModel.zero())
    kwargs.setdefault("delay_model", ConstantDelay(DELAY))
    return MiddlewareSystem(workload, StrategyCombo.from_label(label), **kwargs)


def single_task_workload(execs=(0.1,), homes=("app1",), replicas=None, deadline=1.0):
    task = make_task(
        "A1",
        TaskKind.APERIODIC,
        deadline=deadline,
        execs=execs,
        homes=homes,
        replicas=replicas,
    )
    nodes = sorted({n for s in task.subtasks for n in s.eligible})
    return Workload(tasks=(task,), app_nodes=tuple(nodes)), task


class TestSingleJobFlow:
    def test_job_admitted_and_completes(self):
        workload, task = single_task_workload()
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=2.0)
        metrics = system.metrics
        assert metrics.arrived_jobs == 1
        assert metrics.released_jobs == 1
        assert metrics.completed_jobs == 1
        assert metrics.latency.deadline_misses == 0

    def test_response_time_includes_round_trip_and_execution(self):
        workload, task = single_task_workload(execs=(0.1,))
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=2.0)
        # TE -> AC -> TE round trip (2 x DELAY) + execution 0.1.
        response = system.metrics.latency.response_times.mean
        assert response == pytest.approx(2 * DELAY + 0.1, abs=1e-9)

    def test_multi_stage_chain_crosses_processors(self):
        workload, task = single_task_workload(
            execs=(0.05, 0.05, 0.05), homes=("app1", "app2", "app1")
        )
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=2.0)
        assert system.metrics.completed_jobs == 1
        # 2 x admission round trip + 3 x 0.05 exec + 2 trigger hops.
        response = system.metrics.latency.response_times.mean
        assert response == pytest.approx(2 * DELAY + 0.15 + 2 * DELAY, abs=1e-9)

    def test_synthetic_utilization_expires_at_deadline(self):
        workload, task = single_task_workload(deadline=1.0)
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=0.9)
        assert system.ac.ledger.utilization("app1") == pytest.approx(0.1)
        system.sim.run(until=1.5)
        assert system.ac.ledger.utilization("app1") == 0.0

    def test_overloading_jobs_rejected(self):
        # Each job uses 0.5; the second concurrent one must be rejected
        # (f(0.5) = 0.75 fits, f(1.0) = inf does not).
        workload, task = single_task_workload(execs=(0.5,), deadline=1.0)
        system = build(workload, "J_N_N")
        for i in range(3):
            system.sim.schedule_at(0.0, system._arrive, task, i, 0.0)
        system.sim.run(until=2.0)
        assert system.metrics.released_jobs == 1
        assert system.metrics.rejected_jobs == 2

    def test_rejected_jobs_never_execute(self):
        workload, task = single_task_workload(execs=(0.5,), deadline=1.0)
        system = build(workload, "J_N_N")
        for i in range(2):
            system.sim.schedule_at(0.0, system._arrive, task, i, 0.0)
        system.sim.run(until=2.0)
        assert system.metrics.completed_jobs == 1

    def test_admitted_jobs_meet_deadlines_under_preemption(self):
        fast = make_task(
            "FAST", TaskKind.APERIODIC, deadline=0.3, execs=(0.1,), homes=("app1",)
        )
        slow = make_task(
            "SLOW", TaskKind.APERIODIC, deadline=5.0, execs=(0.4,), homes=("app1",)
        )
        workload = Workload(tasks=(fast, slow), app_nodes=("app1",))
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, slow, 0, 0.0)
        system.sim.schedule_at(0.05, system._arrive, fast, 0, 0.05)
        system.sim.run(until=6.0)
        assert system.metrics.completed_jobs == 2
        assert system.metrics.latency.deadline_misses == 0
        # FAST preempts SLOW (EDMS): its response is round trip + 0.1.
        fast_resp = system.metrics.latency.task_response_times("FAST").mean
        assert fast_resp == pytest.approx(2 * DELAY + 0.1, abs=1e-9)


class TestReallocation:
    def test_lb_reallocates_to_idle_replica(self):
        # app1 is loaded by a resident task; the replicated task should be
        # placed on its app2 duplicate by the LB.
        resident = make_task(
            "R", TaskKind.APERIODIC, deadline=1.0, execs=(0.4,), homes=("app1",)
        )
        moveable = make_task(
            "M",
            TaskKind.APERIODIC,
            deadline=1.0,
            execs=(0.3,),
            homes=("app1",),
            replicas=[("app2",)],
        )
        workload = Workload(tasks=(resident, moveable), app_nodes=("app1", "app2"))
        system = build(workload, "J_N_J")
        system.sim.schedule_at(0.0, system._arrive, resident, 0, 0.0)
        system.sim.schedule_at(0.1, system._arrive, moveable, 0, 0.1)
        system.sim.run(until=2.0)
        assert system.metrics.released_jobs == 2
        # The moveable job must have executed on app2.
        assert system.ac.ledger.utilization("app1") == 0.0  # all expired
        te2 = system.env.task_effectors["app2"]
        assert te2.jobs_released == 1

    def test_no_lb_means_home_assignment(self):
        resident = make_task(
            "R", TaskKind.APERIODIC, deadline=1.0, execs=(0.4,), homes=("app1",)
        )
        moveable = make_task(
            "M",
            TaskKind.APERIODIC,
            deadline=1.0,
            execs=(0.3,),
            homes=("app1",),
            replicas=[("app2",)],
        )
        workload = Workload(tasks=(resident, moveable), app_nodes=("app1", "app2"))
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, resident, 0, 0.0)
        system.sim.schedule_at(0.1, system._arrive, moveable, 0, 0.1)
        system.sim.run(until=2.0)
        te2 = system.env.task_effectors["app2"]
        assert te2.jobs_released == 0


class TestSystemLifecycle:
    def test_invalid_combo_rejected_at_construction(self):
        workload, _ = single_task_workload()
        with pytest.raises(InvalidStrategyCombination):
            MiddlewareSystem(workload, StrategyCombo.from_label("T_J_N"))

    def test_system_runs_once(self, two_node_workload):
        system = build(two_node_workload, "J_N_N")
        system.run(duration=1.0)
        with pytest.raises(ConfigurationError):
            system.run(duration=1.0)

    def test_results_shape(self, two_node_workload):
        system = build(two_node_workload, "J_T_T")
        results = system.run(duration=5.0)
        assert results.combo_label == "J_T_T"
        assert 0.0 <= results.accepted_utilization_ratio <= 1.0
        assert set(results.cpu_utilization) == {"task_manager", "app1", "app2"}
        assert results.events_executed > 0
        assert results.arrived_jobs == results.metrics.arrived_jobs

    def test_deterministic_given_seed(self, two_node_workload):
        a = build(two_node_workload, "J_J_J", seed=5).run(duration=10.0)
        b = build(two_node_workload, "J_J_J", seed=5).run(duration=10.0)
        assert a.accepted_utilization_ratio == b.accepted_utilization_ratio
        assert a.events_executed == b.events_executed

    def test_different_seeds_differ(self, two_node_workload):
        a = build(two_node_workload, "J_J_J", seed=1).run(duration=20.0)
        b = build(two_node_workload, "J_J_J", seed=2).run(duration=20.0)
        assert a.arrived_jobs != b.arrived_jobs  # different Poisson draws

    def test_run_plan_allows_shared_trace(self, two_node_workload):
        from repro.sim.rng import RngRegistry
        from repro.workloads.arrivals import build_arrival_plan

        plan = build_arrival_plan(
            two_node_workload, 10.0, RngRegistry(3).stream("arrivals")
        )
        a = build(two_node_workload, "J_N_N", seed=1).run_plan(plan)
        b = build(two_node_workload, "J_N_N", seed=2).run_plan(plan)
        assert a.arrived_jobs == b.arrived_jobs

"""Integration tests for the batched arrival hot path.

The batching flag must (a) actually engage — arrivals drain through the
AC's batched decision pass — (b) respect every strategy's semantics, and
(c) refuse engines that have no admission controller.
"""

import pytest

from repro.api import Scenario, Session
from repro.errors import ConfigurationError
from repro.workloads.generator import RandomWorkloadParams

PARAMS = RandomWorkloadParams(n_periodic=4, n_aperiodic=4)


def _scenario(combo="J_J_N", batching=True, **kwargs):
    builder = (
        Scenario.builder()
        .random_workload(seed=17, params=PARAMS)
        .combo(combo)
        .duration(15.0)
        .seed(5)
        .arrival_batching(batching)
    )
    for name, value in kwargs.items():
        builder = getattr(builder, name)(*value if isinstance(value, tuple) else (value,))
    return builder.build()


class TestMiddlewareBatching:
    def test_batched_arrivals_drain_through_batch_calls(self):
        session = Session(_scenario(burst=(4.0, 30, None, 1e-4)))
        result = session.run()
        ac = session.system.ac
        assert ac.batch_calls > 0
        assert ac.batched_arrivals >= ac.batch_calls
        # Every arrival was decided exactly once.
        assert result.released_jobs + result.rejected_jobs <= result.arrived_jobs
        assert result.released_jobs > 0

    def test_per_task_strategy_caches_through_the_batch_path(self):
        session = Session(_scenario(combo="T_N_N"))
        session.run()
        ac = session.system.ac
        assert ac.batch_calls > 0
        # AC-per-Task: periodic tasks carry a cached decision after their
        # first arrival (aperiodic tasks are always tested per arrival,
        # so their records legitimately stay undecided).
        workload = session.system.workload
        periodic = {t.task_id for t in workload.tasks if t.is_periodic}
        assert periodic
        for task_id in periodic:
            record = ac._records.get(task_id)
            if record is not None:
                assert record.admitted is not None

    def test_same_periodic_task_twice_in_one_batch_defers_to_cache(self):
        """Regression: under AC-per-Task, a burst delivering several jobs
        of one periodic task into a single drained batch must not stage
        duplicate RESERVED ledger keys — later jobs wait for the first
        job's cached decision, as the sequential path would."""
        workload = Session(_scenario()).deploy().workload  # reuse generator
        periodic = next(t for t in workload.tasks if t.is_periodic)
        scenario = (
            Scenario.builder()
            .random_workload(seed=17, params=PARAMS)
            .combo("T_N_N")
            .duration(10.0)
            .seed(5)
            .arrival_batching()
            .burst(0.0, 5, task_id=periodic.task_id, spacing=1e-9)
            .build()
        )
        session = Session(scenario)
        result = session.run()  # used to raise SchedulingError
        ac = session.system.ac
        assert ac.batch_calls > 0
        record = ac._records[periodic.task_id]
        assert record.admitted is not None
        assert result.released_jobs + result.rejected_jobs > 0

    def test_lb_combos_place_through_batch_sessions(self):
        session = Session(_scenario(combo="J_J_J", burst=(4.0, 30, None, 1e-4)))
        result = session.run()
        ac = session.system.ac
        lb = session.system.lb
        # The queue drains in batches and placements run through the
        # batch admission session (no per-candidate location() probes).
        assert ac.batch_calls > 0
        assert lb.location_calls > 0
        assert lb.plans_returned > 0
        assert result.released_jobs > 0

    @pytest.mark.parametrize("combo", ["J_J_J", "T_T_T", "T_T_J", "J_N_T"])
    def test_lb_batching_matches_sequential_decisions(self, combo):
        """Batched LB placement is bit-identical to the sequential path:
        same admitted/rejected/released counts on the same trace."""
        outcomes = []
        for batching in (False, True):
            session = Session(
                _scenario(
                    combo=combo,
                    batching=batching,
                    burst=(4.0, 30, None, 1e-4),
                )
            )
            result = session.run()
            ac = session.system.ac
            outcomes.append(
                (
                    ac.admitted_jobs,
                    ac.rejected_jobs,
                    result.released_jobs,
                    result.final_synthetic_utilization,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_batching_preserves_admission_accounting(self):
        """On/off runs agree on the ledger bookkeeping invariants."""
        for batching in (False, True):
            session = Session(_scenario(batching=batching))
            result = session.run()
            # Synthetic utilization fully drains after the run (drain
            # window covers the longest deadline).
            for node, value in result.final_synthetic_utilization.items():
                assert value == pytest.approx(0.0, abs=1e-9), (
                    f"batching={batching}: residue on {node}"
                )

    def test_distributed_engine_supports_batching(self):
        scenario = (
            Scenario.builder()
            .random_workload(seed=17, params=PARAMS)
            .distributed()
            .duration(10.0)
            .seed(5)
            .arrival_batching()
            .build()
        )
        session = Session(scenario)
        result = session.run()
        assert sum(ac.batch_calls for ac in session.system.acs.values()) > 0
        assert result.released_jobs > 0


class TestBatchingValidation:
    def test_replay_engine_rejects_arrival_batching(self):
        with pytest.raises(ConfigurationError, match="arrival_batching"):
            (
                Scenario.builder()
                .random_workload(seed=1, params=PARAMS)
                .replay("aub")
                .arrival_batching()
                .build()
            )

    def test_round_trip_preserves_flag(self):
        scenario = _scenario()
        assert scenario.arrival_batching
        restored = Scenario.from_json_str(scenario.to_json_str())
        assert restored == scenario
        # Default-off scenarios omit the key entirely (format stability).
        assert "arrival_batching" not in _scenario(batching=False).to_json()

    def test_via_dance_deploys_batching_ac(self):
        session = Session(_scenario(), via_dance=True)
        session.run()
        assert session.system.ac.get_attribute("batching") is True
        assert session.system.ac.batch_calls > 0

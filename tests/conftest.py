"""Shared fixtures: small deterministic workloads and builders."""

from __future__ import annotations

import random

import pytest

from repro.core.cost_model import CostModel
from repro.workloads.model import Workload

from tests.taskutil import make_task, make_two_node_workload


@pytest.fixture
def rng():
    return random.Random(42)


@pytest.fixture
def two_node_workload() -> Workload:
    return make_two_node_workload()


@pytest.fixture
def zero_cost() -> CostModel:
    return CostModel.zero()

"""Unit tests for strategy combinations and the cost model."""

import random

import pytest

from repro.core.cost_model import (
    CostModel,
    OP_ADMISSION_TEST,
    OP_HOLD_AND_PUSH,
    OP_IR_REPORT,
    OP_IR_UPDATE,
    OP_LB_PLAN,
    OP_RELEASE,
    OP_RELEASE_DUPLICATE,
)
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
    all_combinations,
    valid_combinations,
)
from repro.errors import ConfigurationError, InvalidStrategyCombination
from repro.sim.kernel import USEC


# ----------------------------------------------------------------------
# Strategy combinations (paper section 4.5)
# ----------------------------------------------------------------------
class TestStrategyCombo:
    def test_eighteen_total_combinations(self):
        assert len(all_combinations()) == 18

    def test_fifteen_valid_combinations(self):
        assert len(valid_combinations()) == 15

    def test_exactly_the_ac_task_ir_job_combos_are_invalid(self):
        invalid = [c for c in all_combinations() if not c.is_valid]
        assert len(invalid) == 3
        for combo in invalid:
            assert combo.ac is ACStrategy.PER_TASK
            assert combo.ir is IRStrategy.PER_JOB

    def test_paper_figure_order(self):
        labels = [c.label for c in valid_combinations()]
        assert labels == [
            "T_N_N", "T_N_T", "T_N_J",
            "T_T_N", "T_T_T", "T_T_J",
            "J_N_N", "J_N_T", "J_N_J",
            "J_T_N", "J_T_T", "J_T_J",
            "J_J_N", "J_J_T", "J_J_J",
        ]

    def test_validate_raises_for_invalid(self):
        combo = StrategyCombo(
            ACStrategy.PER_TASK, IRStrategy.PER_JOB, LBStrategy.NONE
        )
        with pytest.raises(InvalidStrategyCombination):
            combo.validate()

    def test_validate_returns_self_for_valid(self):
        combo = StrategyCombo.from_label("J_J_J")
        assert combo.validate() is combo

    def test_label_roundtrip(self):
        for combo in all_combinations():
            assert StrategyCombo.from_label(combo.label) == combo

    def test_from_label_case_insensitive(self):
        assert StrategyCombo.from_label("j_t_n").label == "J_T_N"

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            StrategyCombo.from_label("X_Y_Z")
        with pytest.raises(ConfigurationError):
            StrategyCombo.from_label("J_T")
        with pytest.raises(ConfigurationError):
            StrategyCombo.from_label("N_T_J")  # AC cannot be N

    def test_str_is_label(self):
        assert str(StrategyCombo.from_label("T_N_J")) == "T_N_J"


# ----------------------------------------------------------------------
# Cost model (paper Figures 7/8 calibration)
# ----------------------------------------------------------------------
class TestCostModel:
    def test_default_decompositions_match_paper_means(self):
        cm = CostModel()
        comm = 322 * USEC
        # AC without LB: 1 + 2 + 4 + 2 + 5 = 1114 us
        total = cm.hold_and_push + comm + cm.admission_test + comm + cm.release
        assert total == pytest.approx(1114 * USEC, rel=1e-6)
        # AC with LB, no re-allocation: 1 + 2 + 3 + 2 + 5 = 1116 us
        total = cm.hold_and_push + comm + cm.lb_plan + comm + cm.release
        assert total == pytest.approx(1116 * USEC, rel=1e-6)
        # AC with LB, re-allocation: 1 + 2 + 3 + 2 + 6 = 1201 us
        total = cm.hold_and_push + comm + cm.lb_plan + comm + cm.release_duplicate
        assert total == pytest.approx(1201 * USEC, rel=1e-6)
        # IR rows
        assert cm.ir_update == pytest.approx(17 * USEC)
        assert cm.ir_report + comm == pytest.approx(662 * USEC)

    def test_all_operations_below_two_ms(self):
        cm = CostModel()
        assert all(v < 2e-3 for v in cm.as_dict().values())

    def test_sample_jitter_within_bounds(self):
        cm = CostModel(jitter=0.1)
        r = random.Random(0)
        for _ in range(200):
            s = cm.sample(OP_ADMISSION_TEST, r)
            assert 0.9 * cm.admission_test <= s <= 1.1 * cm.admission_test

    def test_zero_model(self):
        cm = CostModel.zero()
        r = random.Random(0)
        for op in (
            OP_HOLD_AND_PUSH,
            OP_LB_PLAN,
            OP_ADMISSION_TEST,
            OP_RELEASE,
            OP_RELEASE_DUPLICATE,
            OP_IR_REPORT,
            OP_IR_UPDATE,
        ):
            assert cm.sample(op, r) == 0.0

    def test_no_jitter_means_exact(self):
        cm = CostModel(jitter=0.0)
        r = random.Random(0)
        assert cm.sample(OP_RELEASE, r) == cm.release

    def test_unknown_operation_rejected(self):
        cm = CostModel()
        with pytest.raises(ConfigurationError):
            cm.mean("warp_drive")

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(release=-1.0)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(jitter=1.0)

    def test_scaled(self):
        cm = CostModel().scaled(2.0)
        assert cm.admission_test == pytest.approx(400 * USEC)
        with pytest.raises(ConfigurationError):
            CostModel().scaled(-1.0)

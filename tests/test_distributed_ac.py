"""Tests for the decentralized admission-control extension."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.distributed_ac import DistributedMiddlewareSystem
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.sched.aub import aub_term, aub_term_inverse
from repro.sched.task import TaskKind
from repro.workloads.model import Workload

from tests.taskutil import make_task, make_two_node_workload


class TestTermInverse:
    def test_roundtrip(self):
        for u in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9):
            assert aub_term_inverse(aub_term(u)) == pytest.approx(u, abs=1e-12)

    def test_known_point(self):
        # f(0.5) = 0.75
        assert aub_term_inverse(0.75) == pytest.approx(0.5)

    def test_infinite_term_maps_to_saturation(self):
        assert aub_term_inverse(float("inf")) == 1.0

    def test_negative_rejected(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            aub_term_inverse(-0.1)


def build_distributed(workload, **kwargs):
    kwargs.setdefault("cost_model", CostModel.zero())
    kwargs.setdefault("delay_model", ConstantDelay(0.001))
    return DistributedMiddlewareSystem(workload, **kwargs)


class TestDistributedAdmission:
    def test_single_node_task_admitted_locally(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.2,), homes=("app1",)
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        system = build_distributed(workload, seed=1)
        system.sim.schedule_at(0.0, system._base._arrive, task, 0, 0.0)
        system.sim.run(until=2.0)
        assert system.acs["app1"].admitted_jobs == 1
        assert system.metrics.completed_jobs == 1

    def test_multi_node_task_coordinates(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.1, 0.1),
            homes=("app1", "app2"),
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        system = build_distributed(workload, seed=1)
        system.sim.schedule_at(0.0, system._base._arrive, task, 0, 0.0)
        system.sim.run(until=2.0)
        coordinator = system.acs["app1"]
        assert coordinator.admitted_jobs == 1
        assert coordinator.reserve_messages == 2  # app1 + app2
        assert system.metrics.completed_jobs == 1

    def test_saturating_jobs_rejected(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.5,), homes=("app1",)
        )
        workload = Workload(tasks=(task,), app_nodes=("app1",))
        system = build_distributed(workload, seed=1)
        for i in range(3):
            system.sim.schedule_at(0.0, system._base._arrive, task, i, 0.0)
        system.sim.run(until=2.0)
        ac = system.acs["app1"]
        assert ac.admitted_jobs == 1
        assert ac.rejected_jobs == 2

    def test_contributions_expire_at_deadline(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.3,), homes=("app1",)
        )
        workload = Workload(tasks=(task,), app_nodes=("app1",))
        system = build_distributed(workload, seed=1)
        system.sim.schedule_at(0.0, system._base._arrive, task, 0, 0.0)
        system.sim.run(until=0.5)
        assert system.acs["app1"].utilization == pytest.approx(0.3)
        system.sim.run(until=1.5)
        assert system.acs["app1"].utilization == 0.0

    def test_caps_protect_admitted_tasks(self):
        """A committed multi-node task's caps stop later single-node
        arrivals from overloading one of its stages."""
        spanning = make_task(
            "S", TaskKind.APERIODIC, deadline=2.0, execs=(0.6, 0.6),
            homes=("app1", "app2"),
        )
        local = make_task(
            "L", TaskKind.APERIODIC, deadline=2.0, execs=(0.8,), homes=("app1",)
        )
        workload = Workload(tasks=(spanning, local), app_nodes=("app1", "app2"))
        system = build_distributed(workload, seed=1)
        system.sim.schedule_at(0.0, system._base._arrive, spanning, 0, 0.0)
        system.sim.schedule_at(0.1, system._base._arrive, local, 0, 0.1)
        system.sim.run(until=3.0)
        # spanning: u=0.3 per stage; f(0.3)*2 = 0.73, slack 0.27 split ->
        # cap per node = f_inv(f(0.3)+0.136) = f_inv(0.5) ~ 0.42.
        # local adds 0.4 on app1 -> 0.7 > cap -> must be rejected even
        # though app1's own saturation bound would allow it.
        assert system.acs["app1"].admitted_jobs == 1
        assert system.acs["app1"].rejected_jobs == 1
        assert system.metrics.latency.deadline_misses == 0

    def test_no_deadline_misses_on_random_workload(self):
        import random
        from repro.workloads.generator import generate_random_workload

        workload = generate_random_workload(random.Random(4))
        system = DistributedMiddlewareSystem(workload, seed=9)
        results = system.run(duration=40.0)
        assert results.deadline_misses == 0
        assert (
            results.metrics.released_jobs + results.metrics.rejected_jobs
            == results.metrics.arrived_jobs
        )

class TestPiggybackedRounds:
    """Arrival batching packs a drained burst into one multi-reservation
    coordination round; decisions and caps must stay bit-identical to
    one-round-per-reservation sequential coordination."""

    # CostModel.zero() never coalesces (zero-cost work completes before
    # the next network delivery queues an arrival); deterministic nonzero
    # costs make the first dispatch pass drain the whole burst.
    COSTS = CostModel(jitter=0.0)

    def _run_burst(self, task, workload, n_jobs, batching):
        system = build_distributed(
            workload,
            seed=1,
            cost_model=self.COSTS,
            arrival_batching=batching,
        )
        for i in range(n_jobs):
            system.sim.schedule_at(0.0, system._base._arrive, task, i, 0.0)
        system.sim.run(until=0.5)
        return system

    def test_burst_coalesces_into_one_round(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.1, 0.1),
            homes=("app1", "app2"),
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        stats = {}
        for batching in (False, True):
            system = self._run_burst(task, workload, 10, batching)
            rounds = sum(ac.coordination_rounds for ac in system.acs.values())
            messages = sum(ac.reserve_messages for ac in system.acs.values())
            coordinator = system.acs["app1"]
            stats[batching] = (
                rounds,
                messages,
                coordinator.admitted_jobs,
                coordinator.rejected_jobs,
            )
        seq_rounds, seq_msgs, admitted, rejected = stats[False]
        bat_rounds, bat_msgs, bat_admitted, bat_rejected = stats[True]
        # O(burst) two-phase rounds collapse to O(1): one round, one
        # reserve message per participant.
        assert seq_rounds == 10 and seq_msgs == 20
        assert bat_rounds == 1 and bat_msgs == 2
        # Mid-batch aborts: the burst saturates, so later items abort
        # while earlier ones commit — decisions identical either way.
        assert (bat_admitted, bat_rejected) == (admitted, rejected)
        assert admitted > 0 and rejected > 0

    def test_piggybacked_caps_and_totals_bit_identical(self):
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=5.0, execs=(0.2, 0.2),
            homes=("app1", "app2"),
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        views = []
        for batching in (False, True):
            system = self._run_burst(task, workload, 3, batching)
            views.append(
                {
                    node: (ac.utilization, dict(ac._caps))
                    for node, ac in system.acs.items()
                }
            )
        assert views[0] == views[1]
        # Caps actually exist (multi-node commits partition their slack).
        assert any(caps for _, caps in views[0].values())

    def test_piggybacking_matches_sequential_on_random_workload(self):
        import random
        from repro.workloads.generator import generate_random_workload

        workload = generate_random_workload(random.Random(4))
        outcomes = []
        for batching in (False, True):
            system = DistributedMiddlewareSystem(
                workload,
                seed=9,
                cost_model=self.COSTS,
                arrival_batching=batching,
            )
            results = system.run(duration=40.0)
            outcomes.append(
                (
                    results.metrics.released_jobs,
                    results.metrics.rejected_jobs,
                    results.metrics.arrived_jobs,
                    results.deadline_misses,
                )
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] > 0 and outcomes[0][1] > 0

    def test_expired_deadline_rejected_inline_before_packing(self):
        """A queued arrival whose deadline already passed is rejected
        without joining the piggybacked round."""
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=0.25, execs=(0.1, 0.1),
            homes=("app1", "app2"),
        )
        workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
        system = build_distributed(
            workload,
            seed=1,
            cost_model=CostModel(jitter=0.0, admission_test=0.3),
            arrival_batching=True,
        )
        for i in range(4):
            system.sim.schedule_at(0.0, system._base._arrive, task, i, 0.0)
        system.sim.run(until=1.0)
        coordinator = system.acs["app1"]
        # The first arrival's admission-test work item completes at
        # ~0.301, past every queued job's 0.25 absolute deadline: the
        # whole burst is rejected inline, no round is coordinated.
        assert coordinator.admitted_jobs == 0
        assert coordinator.rejected_jobs == 4
        assert coordinator.coordination_rounds == 0
        assert coordinator.reserve_messages == 0
        assert all(ac.utilization == 0.0 for ac in system.acs.values())


class TestDistributedComparisons:
    def test_more_conservative_than_centralized(self):
        """Slack partitioning makes the decentralized variant more
        conservative given the same admission state.  Across a whole
        trace the admission *timing* differs slightly (no central queue),
        so we allow a small tolerance rather than strict dominance."""
        import random
        from repro.workloads.generator import generate_random_workload

        workload = generate_random_workload(random.Random(6))
        distributed = DistributedMiddlewareSystem(workload, seed=2)
        r_dist = distributed.run(duration=40.0)
        centralized = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), seed=2
        )
        r_cent = centralized.run(duration=40.0)
        assert (
            r_dist.accepted_utilization_ratio
            <= r_cent.accepted_utilization_ratio + 0.05
        )

"""Unit tests for RNG streams, tracing and statistics collectors."""

import math

import pytest

from repro.sim.monitor import StatSeries, TimeWeightedStat
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


# ----------------------------------------------------------------------
# RngRegistry
# ----------------------------------------------------------------------
class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_independent_of_draw_order(self):
        r1 = RngRegistry(7)
        a_first = [r1.stream("a").random() for _ in range(3)]
        r2 = RngRegistry(7)
        r2.stream("b").random()  # interleaved draw on another stream
        a_second = [r2.stream("a").random() for _ in range(3)]
        assert a_first == a_second

    def test_different_seeds_give_different_sequences(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_different_names_give_different_sequences(self):
        rngs = RngRegistry(3)
        assert rngs.stream("x").random() != rngs.stream("y").random()

    def test_spawn_derives_stable_child(self):
        a = RngRegistry(5).spawn("child").stream("s").random()
        b = RngRegistry(5).spawn("child").stream("s").random()
        assert a == b

    def test_spawn_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.spawn("child")
        assert parent.master_seed != child.master_seed


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_records_accumulate(self):
        tracer = Tracer()
        tracer.record(1.0, "cat.a", "node1", detail=42)
        tracer.record(2.0, "cat.b", None)
        assert len(tracer) == 2
        assert tracer.records[0].get("detail") == 42

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "cat.a")
        assert len(tracer) == 0

    def test_by_category_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "x")
        tracer.record(2.0, "y")
        tracer.record(3.0, "x")
        assert [r.time for r in tracer.by_category("x")] == [1.0, 3.0]

    def test_categories_histogram(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, "a")
        tracer.record(0.0, "b")
        assert tracer.categories() == {"a": 3, "b": 1}

    def test_subscribe_listener_sees_records(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.record(1.0, "cat")
        assert len(seen) == 1 and seen[0].category == "cat"

    def test_get_returns_default_for_missing_key(self):
        tracer = Tracer()
        tracer.record(1.0, "cat", foo=1)
        assert tracer.records[0].get("bar", "d") == "d"

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "cat")
        tracer.clear()
        assert len(tracer) == 0


# ----------------------------------------------------------------------
# StatSeries
# ----------------------------------------------------------------------
class TestStatSeries:
    def test_empty_stats(self):
        s = StatSeries()
        assert s.mean == 0.0
        assert s.count == 0
        assert s.variance == 0.0

    def test_basic_moments(self):
        s = StatSeries()
        for v in (2.0, 4.0, 6.0):
            s.add(v)
        assert s.mean == pytest.approx(4.0)
        assert s.minimum == 2.0
        assert s.maximum == 6.0
        assert s.variance == pytest.approx(8.0 / 3.0)
        assert s.stdev == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_keep_samples(self):
        s = StatSeries(keep_samples=True)
        s.add(1.0)
        s.add(2.0)
        assert s.samples == [1.0, 2.0]

    def test_samples_not_kept_by_default(self):
        s = StatSeries()
        s.add(1.0)
        assert s.samples == []

    def test_merge_combines(self):
        a = StatSeries()
        b = StatSeries()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)
        assert a.maximum == 3.0


# ----------------------------------------------------------------------
# TimeWeightedStat
# ----------------------------------------------------------------------
class TestTimeWeightedStat:
    def test_constant_signal(self):
        tw = TimeWeightedStat(initial=2.0)
        assert tw.average(10.0) == pytest.approx(2.0)

    def test_step_signal(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 1.0)
        assert tw.average(2.0) == pytest.approx(0.5)

    def test_multiple_steps(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 1.0)
        tw.update(2.0, 0.0)
        tw.update(3.0, 2.0)
        # areas: 0*1 + 1*1 + 0*1 + 2*1 over 4 seconds
        assert tw.average(4.0) == pytest.approx(0.75)

    def test_peak_tracks_maximum(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 5.0)
        tw.update(2.0, 1.0)
        assert tw.peak == 5.0

    def test_time_cannot_go_backwards(self):
        tw = TimeWeightedStat()
        tw.update(2.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(1.0, 0.0)

    def test_average_before_last_update_rejected(self):
        tw = TimeWeightedStat()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(4.0)

    def test_value_property(self):
        tw = TimeWeightedStat()
        tw.update(1.0, 3.0)
        assert tw.value == 3.0

"""Unit tests for the preemptive fixed-priority processor model."""

import math

import pytest

from repro.cpu.processor import Processor
from repro.cpu.thread import DispatchThread, WorkItem
from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def make_cpu():
    sim = Simulator()
    cpu = Processor(sim, "p1")
    return sim, cpu


def test_single_item_completes_after_cost():
    sim, cpu = make_cpu()
    done = []
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(2.5, lambda _: done.append(sim.now)))
    sim.run()
    assert done == [2.5]


def test_fifo_within_thread():
    sim, cpu = make_cpu()
    done = []
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(1.0, lambda p: done.append((p, sim.now)), payload="a"))
    cpu.submit(t, WorkItem(1.0, lambda p: done.append((p, sim.now)), payload="b"))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_higher_priority_preempts_lower():
    sim, cpu = make_cpu()
    done = []
    low = cpu.new_thread("low", 10.0)
    high = cpu.new_thread("high", 1.0)
    cpu.submit(low, WorkItem(4.0, lambda _: done.append(("low", sim.now))))
    # After 1s, a high-priority item of cost 2 arrives and preempts.
    sim.schedule(
        1.0, lambda: cpu.submit(high, WorkItem(2.0, lambda _: done.append(("high", sim.now))))
    )
    sim.run()
    assert done == [("high", 3.0), ("low", 6.0)]


def test_equal_priority_does_not_preempt():
    sim, cpu = make_cpu()
    done = []
    a = cpu.new_thread("a", 5.0)
    b = cpu.new_thread("b", 5.0)
    cpu.submit(a, WorkItem(3.0, lambda _: done.append(("a", sim.now))))
    sim.schedule(1.0, lambda: cpu.submit(b, WorkItem(1.0, lambda _: done.append(("b", sim.now)))))
    sim.run()
    assert done == [("a", 3.0), ("b", 4.0)]


def test_preempted_work_resumes_with_remaining_cost():
    sim, cpu = make_cpu()
    done = []
    low = cpu.new_thread("low", 10.0)
    high = cpu.new_thread("high", 1.0)
    cpu.submit(low, WorkItem(5.0, lambda _: done.append(sim.now)))
    for start in (1.0, 3.0):
        sim.schedule(start, lambda: cpu.submit(high, WorkItem(1.0)))
    sim.run()
    # low runs [0,1], [2,3], [4,7] -> completes at 7 (5s of CPU total)
    assert done == [7.0]


def test_nested_preemption_three_levels():
    sim, cpu = make_cpu()
    done = []
    t1 = cpu.new_thread("t1", 3.0)
    t2 = cpu.new_thread("t2", 2.0)
    t3 = cpu.new_thread("t3", 1.0)
    cpu.submit(t1, WorkItem(10.0, lambda _: done.append(("t1", sim.now))))
    sim.schedule(1.0, lambda: cpu.submit(t2, WorkItem(5.0, lambda _: done.append(("t2", sim.now)))))
    sim.schedule(2.0, lambda: cpu.submit(t3, WorkItem(2.0, lambda _: done.append(("t3", sim.now)))))
    sim.run()
    assert done == [("t3", 4.0), ("t2", 8.0), ("t1", 17.0)]


def test_idle_listener_fires_on_transition():
    sim, cpu = make_cpu()
    idle_times = []
    cpu.on_idle(idle_times.append)
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(1.0))
    sim.schedule(5.0, lambda: cpu.submit(t, WorkItem(1.0)))
    sim.run()
    assert idle_times == [1.0, 6.0]


def test_idle_listener_not_fired_when_more_work_queued():
    sim, cpu = make_cpu()
    idle_times = []
    cpu.on_idle(idle_times.append)
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(1.0))
    cpu.submit(t, WorkItem(1.0))
    sim.run()
    assert idle_times == [2.0]


def test_completion_callback_can_submit_more_work():
    sim, cpu = make_cpu()
    done = []
    t = cpu.new_thread("t", 1.0)

    def resubmit(_):
        done.append(sim.now)
        if len(done) < 3:
            cpu.submit(t, WorkItem(1.0, resubmit))

    cpu.submit(t, WorkItem(1.0, resubmit))
    sim.run()
    assert done == [1.0, 2.0, 3.0]


def test_utilization_accounting():
    sim, cpu = make_cpu()
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(2.0))
    sim.run(until=4.0)
    assert cpu.utilization(4.0) == pytest.approx(0.5)


def test_processor_speed_scales_duration():
    sim = Simulator()
    cpu = Processor(sim, "fast", speed=2.0)
    done = []
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(4.0, lambda _: done.append(sim.now)))
    sim.run()
    assert done == [2.0]


def test_invalid_speed_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Processor(sim, "bad", speed=0.0)


def test_negative_cost_rejected():
    with pytest.raises(SimulationError):
        WorkItem(-1.0)


def test_zero_cost_item_completes_immediately():
    sim, cpu = make_cpu()
    done = []
    t = cpu.new_thread("t", 1.0)
    cpu.submit(t, WorkItem(0.0, lambda _: done.append(sim.now)))
    sim.run()
    assert done == [0.0]


def test_thread_cannot_join_two_processors():
    sim = Simulator()
    cpu1 = Processor(sim, "p1")
    cpu2 = Processor(sim, "p2")
    t = cpu1.new_thread("t", 1.0)
    with pytest.raises(SimulationError):
        cpu2.add_thread(t)


def test_submit_to_foreign_thread_rejected():
    sim = Simulator()
    cpu1 = Processor(sim, "p1")
    cpu2 = Processor(sim, "p2")
    t = cpu1.new_thread("t", 1.0)
    with pytest.raises(SimulationError):
        cpu2.submit(t, WorkItem(1.0))


def test_infinite_priority_thread_runs_only_when_idle():
    """The idle-detector pattern: a +inf priority thread's work waits for
    every other thread to drain."""
    sim, cpu = make_cpu()
    done = []
    app = cpu.new_thread("app", 1.0)
    idle = cpu.new_thread("idle", math.inf)
    cpu.submit(idle, WorkItem(0.5, lambda _: done.append(("idle", sim.now))))
    cpu.submit(app, WorkItem(2.0, lambda _: done.append(("app", sim.now))))
    sim.run()
    assert done == [("app", 2.0), ("idle", 2.5)]


def test_items_completed_counter():
    sim, cpu = make_cpu()
    t = cpu.new_thread("t", 1.0)
    for _ in range(3):
        cpu.submit(t, WorkItem(1.0))
    sim.run()
    assert cpu.items_completed == 3


def test_work_item_timestamps():
    sim, cpu = make_cpu()
    t = cpu.new_thread("t", 1.0)
    first = WorkItem(2.0)
    second = WorkItem(1.0)
    cpu.submit(t, first)
    cpu.submit(t, second)
    sim.run()
    assert first.enqueued_at == 0.0 and first.started_at == 0.0
    assert second.enqueued_at == 0.0 and second.started_at == 2.0

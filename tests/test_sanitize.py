"""Runtime determinism sanitizer (REPRO_SANITIZE=1): arming + fault injection.

The positive half proves the sanitizer is pure observation: a full API run
under ``REPRO_SANITIZE=1`` completes with zero violations and produces a
bit-identical result to the unsanitized run.  The negative half injects a
deliberate fault behind each of the four checks and requires the exact
:class:`~repro.sanitize.SanitizeViolation` to fire — a sanitizer that
cannot catch its target bug is just overhead.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Scenario, Session
from repro.sanitize import (
    LedgerShadow,
    RngDrawLedger,
    SanitizeViolation,
    pickle_canary,
)
from repro.sched.aub import AubAnalyzer, SyntheticUtilizationLedger
from repro.sim.rng import RngRegistry


@pytest.fixture
def sanitize(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


def _scenario() -> Scenario:
    return (
        Scenario.builder()
        .random_workload(seed=7)
        .combo("T_T_T")
        .duration(40.0)
        .seed(7)
        .build()
    )


# ----------------------------------------------------------------------
# Positive: sanitizer on == sanitizer off, zero violations
# ----------------------------------------------------------------------
class TestSanitizedRunIsObservationOnly:
    def test_full_run_matches_unsanitized_bit_for_bit(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = Session(_scenario()).run()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitized = Session(_scenario()).run()
        assert (
            sanitized.accepted_utilization_ratio
            == plain.accepted_utilization_ratio
        )
        assert sanitized.completed_jobs == plain.completed_jobs
        assert sanitized.deadline_misses == plain.deadline_misses
        assert sanitized.cpu_utilization == plain.cpu_utilization
        assert (
            sanitized.final_synthetic_utilization
            == plain.final_synthetic_utilization
        )

    def test_rng_registry_attributes_all_run_draws(self, sanitize):
        # The middleware run audits its registry at result time; reaching
        # here without SanitizeViolation means every draw was attributed.
        result = Session(_scenario()).run()
        assert 0.0 < result.accepted_utilization_ratio <= 1.0


# ----------------------------------------------------------------------
# Negative 1: pickle canary
# ----------------------------------------------------------------------
class TestPickleCanary:
    def test_clean_payload_passes(self):
        pickle_canary(("cell", 0, (1.0, 2.0)), "test payload")

    def test_unpicklable_payload_is_reported(self):
        with pytest.raises(SanitizeViolation, match="not picklable"):
            pickle_canary(threading.Lock(), "test payload")

    def test_run_cells_canary_rejects_lock_in_cell(self, sanitize):
        from repro.experiments.runner import run_cells

        cells = [(0, threading.Lock())]
        with pytest.raises(SanitizeViolation, match="run_cells cell #0"):
            run_cells(_square_cell, cells, n_workers=1)

    def test_run_cells_clean_payload_still_runs(self, sanitize):
        from repro.experiments.runner import run_cells

        assert run_cells(_square_cell, [(0, 2), (1, 3)], n_workers=1) == [
            4,
            9,
        ]


def _square_cell(index, value):
    return value**2


# ----------------------------------------------------------------------
# Negative 2: ledger shard vs unsharded shadow
# ----------------------------------------------------------------------
class TestLedgerShadow:
    def test_tampered_shard_total_is_caught_on_next_mutation(self, sanitize):
        ledger = SyntheticUtilizationLedger(["n1", "n2"])
        ledger.add("n1", ("t1", 0, 0), 0.2)
        ledger._shards["n1"].total += 0.5  # the injected bookkeeping bug
        with pytest.raises(SanitizeViolation, match="drifted"):
            ledger.add("n1", ("t1", 1, 0), 0.1)

    def test_tampered_contribution_value_is_caught(self, sanitize):
        ledger = SyntheticUtilizationLedger(["n1"])
        ledger.add("n1", ("t1", 0, 0), 0.2)
        shard = ledger._shards["n1"]
        shard.contribs[("t1", 0, 0)] = 0.3
        shard.total = 0.3
        with pytest.raises(SanitizeViolation, match="shadow recorded"):
            ledger.add("n1", ("t1", 1, 0), 0.1)

    def test_shadow_verify_rejects_leaked_key(self):
        shadow = LedgerShadow()
        shadow.add("n1", ("t1", 0, 0), 0.2)
        with pytest.raises(SanitizeViolation, match="unexpected keys"):
            shadow.verify_shard(
                "n1",
                {("t1", 0, 0): 0.2, ("t9", 0, 0): 0.1},
                0.3,
            )

    def test_without_sanitize_tampering_goes_unnoticed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        ledger = SyntheticUtilizationLedger(["n1"])
        ledger.add("n1", ("t1", 0, 0), 0.2)
        ledger._shards["n1"].total += 0.5
        ledger.add("n1", ("t1", 1, 0), 0.1)  # no shadow, no violation


# ----------------------------------------------------------------------
# Negative 3: analyzer cached terms vs fresh recompute
# ----------------------------------------------------------------------
class TestAnalyzerCacheAudit:
    def test_tampered_node_term_is_caught_on_admission(self, sanitize):
        ledger = SyntheticUtilizationLedger(["n1", "n2"])
        analyzer = AubAnalyzer(ledger)
        analyzer.register(("t1", 0), ["n1", "n2"], expiry=None)
        assert analyzer.admissible(["n1"], {"n1": 0.1}, now=0.0)
        analyzer._node_terms["n1"] = 0.123  # the injected stale cache
        with pytest.raises(SanitizeViolation, match="cached f\\(U\\)"):
            analyzer.admissible(["n1"], {"n1": 0.1}, now=1.0)

    def test_tampered_task_total_is_caught(self, sanitize):
        ledger = SyntheticUtilizationLedger(["n1"])
        analyzer = AubAnalyzer(ledger)
        analyzer.register(("t1", 0), ["n1"], expiry=None)
        assert analyzer.admissible(["n1"], {"n1": 0.1}, now=0.0)
        if ("t1", 0) in analyzer._task_totals:
            analyzer._task_totals[("t1", 0)] += 0.25
            with pytest.raises(SanitizeViolation, match="condition total"):
                analyzer.admissible(["n1"], {"n1": 0.1}, now=1.0)

    def test_clean_analyzer_is_silent(self, sanitize):
        ledger = SyntheticUtilizationLedger(["n1"])
        analyzer = AubAnalyzer(ledger)
        analyzer.register(("t1", 0), ["n1"], expiry=None)
        ledger.add("n1", ("t1", 0, 0), 0.2)
        for step in range(5):
            analyzer.admissible(["n1"], {"n1": 0.05}, now=float(step))


# ----------------------------------------------------------------------
# Negative 4: RNG draw attribution
# ----------------------------------------------------------------------
class TestRngDrawAttribution:
    def test_ambient_draw_fails_the_audit(self, sanitize):
        rngs = RngRegistry(1)
        rngs.stream("arrivals").random()  # attributed
        rngs._streams["arrivals"].random()  # behind the wrapper's back
        with pytest.raises(SanitizeViolation, match="unattributed"):
            rngs.audit()

    def test_attributed_draws_audit_clean(self, sanitize):
        rngs = RngRegistry(1)
        stream = rngs.stream("arrivals")
        for _ in range(10):
            stream.random()
        stream.gauss(0.0, 1.0)
        rngs.stream("network").uniform(0.0, 1.0)
        rngs.audit()
        assert rngs.draw_ledger is not None
        assert rngs.draw_ledger.counts["arrivals"] == 11
        assert rngs.draw_ledger.counts["network"] == 1

    def test_audited_streams_reproduce_unsanitized_sequences(
        self, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = [RngRegistry(3).stream("s").random() for _ in range(1)]
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        audited = [RngRegistry(3).stream("s").random() for _ in range(1)]
        assert plain == audited

    def test_ledger_audit_reports_the_offending_stream(self):
        ledger = RngDrawLedger()
        ledger.baseline("a", state=(1, 2))
        ledger.baseline("b", state=(3, 4))
        with pytest.raises(SanitizeViolation, match=r"\['b'\]"):
            ledger.audit([("a", (1, 2)), ("b", (9, 9))])

"""Property-based tests for the kernel, strategies, specs and arrivals."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.workload_spec import parse_workload_json, workload_to_json
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
)
from repro.sched.edms import assign_priorities
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.sim.kernel import Simulator
from repro.workloads.arrivals import build_arrival_plan
from repro.workloads.generator import generate_random_workload
from repro.workloads.model import Workload


# ----------------------------------------------------------------------
# Kernel ordering
# ----------------------------------------------------------------------
class TestKernelProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=50,
        )
    )
    def test_dispatch_order_is_time_then_priority_then_fifo(self, entries):
        sim = Simulator()
        fired = []
        for i, (t, prio) in enumerate(entries):
            sim.schedule_at(
                t, lambda t=t, prio=prio, i=i: fired.append((t, prio, i)),
                priority=prio,
            )
        sim.run()
        assert fired == sorted(fired)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)))
    def test_clock_is_monotone(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategyProperties:
    @given(
        st.sampled_from(list(ACStrategy)),
        st.sampled_from(list(IRStrategy)),
        st.sampled_from(list(LBStrategy)),
    )
    def test_label_roundtrip(self, ac, ir, lb):
        combo = StrategyCombo(ac, ir, lb)
        assert StrategyCombo.from_label(combo.label) == combo

    @given(
        st.sampled_from(list(ACStrategy)),
        st.sampled_from(list(IRStrategy)),
        st.sampled_from(list(LBStrategy)),
    )
    def test_validity_rule(self, ac, ir, lb):
        combo = StrategyCombo(ac, ir, lb)
        expected = not (ac is ACStrategy.PER_TASK and ir is IRStrategy.PER_JOB)
        assert combo.is_valid == expected


# ----------------------------------------------------------------------
# Workload spec round-trips
# ----------------------------------------------------------------------
node_names = st.sampled_from(["app1", "app2", "app3"])


@st.composite
def workloads(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for i in range(n_tasks):
        kind = draw(st.sampled_from(list(TaskKind)))
        deadline = draw(st.floats(min_value=0.5, max_value=10.0))
        n_sub = draw(st.integers(min_value=1, max_value=3))
        subtasks = []
        for j in range(n_sub):
            home = draw(node_names)
            replica = draw(st.sampled_from([(), tuple({n for n in ["app1", "app2", "app3"] if n != home})[:1]]))
            subtasks.append(
                SubtaskSpec(
                    index=j,
                    execution_time=draw(
                        st.floats(min_value=0.01, max_value=deadline / (n_sub * 2))
                    ),
                    home=home,
                    replicas=replica,
                )
            )
        tasks.append(
            TaskSpec(
                task_id=f"T{i}",
                kind=kind,
                deadline=deadline,
                subtasks=tuple(subtasks),
                period=deadline if kind is TaskKind.PERIODIC else None,
                phase=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return Workload(tasks=tuple(tasks), app_nodes=("app1", "app2", "app3"))


class TestSpecProperties:
    @settings(max_examples=40)
    @given(workloads())
    def test_json_roundtrip(self, workload):
        assert parse_workload_json(workload_to_json(workload)) == workload

    @settings(max_examples=40)
    @given(workloads())
    def test_edms_priorities_respect_deadlines(self, workload):
        levels = assign_priorities(workload.tasks)
        tasks = {t.task_id: t for t in workload.tasks}
        ordered = sorted(levels, key=levels.get)
        deadlines = [tasks[tid].deadline for tid in ordered]
        assert deadlines == sorted(deadlines)


# ----------------------------------------------------------------------
# Arrival plans
# ----------------------------------------------------------------------
class TestArrivalProperties:
    @settings(max_examples=30)
    @given(workloads(), st.integers(min_value=0, max_value=1000))
    def test_arrivals_within_horizon_and_sorted(self, workload, seed):
        plan = build_arrival_plan(workload, 50.0, random.Random(seed))
        for task_id, times in plan.times.items():
            assert list(times) == sorted(times)
            assert all(0 <= t < 50.0 for t in times)

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generator_always_calibrated(self, seed):
        workload = generate_random_workload(random.Random(seed))
        for node, util in workload.static_utilization().items():
            assert abs(util - 0.5) < 1e-9

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generator_tasks_always_feasible(self, seed):
        workload = generate_random_workload(random.Random(seed))
        for task in workload.tasks:
            total = sum(s.execution_time for s in task.subtasks)
            assert total <= task.deadline

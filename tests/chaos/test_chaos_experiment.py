"""The availability-under-failure grid: shape, invariants, determinism."""

from __future__ import annotations

from repro.experiments.chaos import build_chaos_suite, run_chaos_suite

EXPECTED_CELLS = (
    "baseline",
    "crash_recover",
    "crash_forever",
    "partition",
    "message_loss",
    "delay_spike",
)


def test_suite_shape():
    suite = build_chaos_suite(duration=10.0)
    assert tuple(c.label for c in suite.cells) == EXPECTED_CELLS
    assert all(c.engine == "distributed" for c in suite.cells)


def test_grid_results_and_worker_count_determinism():
    serial = run_chaos_suite(duration=10.0, n_workers=1)
    parallel = run_chaos_suite(duration=10.0, n_workers=3)
    assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]

    by_label = {r.scenario: r for r in serial}
    assert set(by_label) == set(EXPECTED_CELLS)
    for res in serial:
        # Conservation holds in every cell, faulty or not.
        assert res.arrived_jobs == res.released_jobs + res.rejected_jobs
        assert 0.0 <= res.availability <= 1.0
    # The baseline saw no chaos; fault cells actually injected faults.
    baseline = by_label["baseline"]
    assert baseline.messages_dropped == 0
    assert baseline.vote_timeouts == 0
    assert by_label["message_loss"].messages_dropped > 0

"""Chaos invariant suite: the distributed engine under generated faults.

Hypothesis generates arbitrary fault schedules — crashes (with and
without recovery), partitions, delay spikes, and seeded message loss —
and asserts the invariants the fault-tolerant admission protocol
promises no matter what the schedule does:

* **Conservation** — every arrival ends exactly one of released or
  rejected once the drain window closes; faults can change *which*, but
  never strand a job mid-coordination.
* **No reservation leaks** — after the drain, every controller's lock
  table, contribution map, and in-flight transaction tables are empty
  and its running total is exactly zero (``verify_ledger`` re-derives
  the total from scratch; under ``REPRO_SANITIZE=1`` it additionally
  cross-checks the :class:`~repro.sanitize.LedgerShadow` mirror).
* **Termination** — transactions opened before a partition finish after
  it heals (retry or abort), so the drained system is quiescent.
* **Determinism** — a fixed seed gives bit-identical results on rerun;
  the experiment layer gives bit-identical grids for any worker count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario, Session

#: Node names materialized by ``WorkloadSource.random(seed=3)``; pinned
#: so schedules can reference nodes without re-materializing per example.
NODES = ("app1", "app2", "app3", "app4", "app5")
DURATION = 20.0


def _build(faults, seed: int = 11, duration: float = DURATION) -> Scenario:
    builder = (
        Scenario.builder()
        .random_workload(seed=3)
        .distributed()
        .duration(duration)
        .seed(seed)
    )
    for add in faults:
        add(builder)
    return builder.build()


@st.composite
def fault_schedules(draw):
    """A list of builder closures, each appending one fault disturbance."""
    faults = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(
            st.sampled_from(("crash", "partition", "spike", "loss"))
        )
        start = draw(st.floats(0.0, DURATION, allow_nan=False))
        span = draw(st.floats(0.5, DURATION, allow_nan=False))
        if kind == "crash":
            node = draw(st.sampled_from(NODES))
            recovery = start + span if draw(st.booleans()) else None
            faults.append(
                lambda b, n=node, t=start, r=recovery: b.node_crash(
                    n, time=t, recovery=r
                )
            )
        elif kind == "partition":
            split = draw(st.integers(1, len(NODES) - 1))
            faults.append(
                lambda b, t=start, h=start + span, s=split: b.partition(
                    time=t, heal=h, group_a=NODES[:s], group_b=NODES[s:]
                )
            )
        elif kind == "spike":
            factor = draw(st.floats(1.5, 20.0, allow_nan=False))
            faults.append(
                lambda b, t=start, u=start + span, f=factor: b.delay_spike(
                    time=t, until=u, factor=f
                )
            )
        else:
            probability = draw(st.floats(0.05, 0.9, allow_nan=False))
            faults.append(
                lambda b, p=probability, t=start, u=start + span: (
                    b.message_loss(p, time=t, until=u)
                )
            )
    return faults


def _run_and_check_invariants(scenario: Scenario):
    session = Session(scenario)
    result = session.run()
    system = session.system

    # Conservation: every arrival resolved exactly one way.
    assert result.arrived_jobs == result.released_jobs + result.rejected_jobs

    # No reservation leaks & termination: quiescent controllers.
    for node in sorted(system.acs):
        ac = system.acs[node]
        assert not ac._locks, f"{node}: leaked locks {ac._locks}"
        assert not ac._contribs, f"{node}: unexpired contributions"
        # Exact zero is the contract: the ledger snaps to 0.0 when its
        # last lock/contribution clears.
        # repro-lint: disable=RL004
        assert ac._total == 0.0, f"{node}: residual total {ac._total}"
        assert not ac._transactions, f"{node}: unfinished transactions"
        assert not ac._batch_transactions, f"{node}: unfinished batches"
        ac.verify_ledger()
    return result


@given(fault_schedules())
@settings(max_examples=20, deadline=None)
def test_invariants_hold_under_any_fault_schedule(faults):
    _run_and_check_invariants(_build(faults))


@given(fault_schedules())
@settings(max_examples=20, deadline=None)
def test_invariants_hold_with_arrival_batching(faults):
    batched = (
        Scenario.builder()
        .random_workload(seed=3)
        .distributed()
        .arrival_batching()
        .duration(DURATION)
        .seed(11)
    )
    for add in faults:
        add(batched)
    scenario = batched.build()
    # Chaotic scenarios survive the JSON codec like any other.
    assert Scenario.from_json_str(scenario.to_json_str()) == scenario
    _run_and_check_invariants(scenario)


@given(fault_schedules(), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_fixed_seed_reruns_are_bit_identical(faults, seed):
    first = Session(_build(faults, seed=seed)).run()
    second = Session(_build(faults, seed=seed)).run()
    assert first.to_json_str() == second.to_json_str()


def test_partitioned_transactions_terminate_after_heal():
    # A partition covering most of the run: transactions started across
    # the cut must all retry through or abort by the end of the drain.
    scenario = _build(
        [
            lambda b: b.partition(
                time=2.0, heal=15.0, group_a=NODES[:2], group_b=NODES[2:]
            )
        ]
    )
    result = _run_and_check_invariants(scenario)
    assert result.messages_dropped > 0
    assert result.vote_timeouts > 0


def test_crash_without_recovery_rejects_but_conserves():
    scenario = _build(
        [lambda b: b.node_crash(NODES[0], time=1.0, recovery=None)]
    )
    result = _run_and_check_invariants(scenario)
    assert result.rejected_jobs > 0


def test_crashed_node_readmits_after_recovery():
    crash = _build([lambda b: b.node_crash(NODES[0], time=1.0, recovery=2.0)])
    result = _run_and_check_invariants(crash)
    # The recovered node serves arrivals again: the run accepts more jobs
    # than one where the node never comes back.
    dead = _build([lambda b: b.node_crash(NODES[0], time=1.0, recovery=None)])
    assert result.released_jobs >= Session(dead).run().released_jobs


def test_fault_free_run_is_bit_identical_to_seed_behavior():
    # The chaos layer must be invisible when no faults are declared: the
    # session installs no injector and the result matches a build of the
    # identical scenario byte for byte (including serialized JSON, which
    # omits the chaos counters when zero).
    plain = Scenario.builder().random_workload(seed=3).distributed()
    plain = plain.duration(DURATION).seed(11).build()
    session = Session(plain)
    result = session.run()
    assert session.system.network.fault_injector is None
    assert result.messages_dropped == 0
    assert result.vote_timeouts == 0
    data = result.to_json()
    for key in (
        "messages_dropped",
        "messages_delay_spiked",
        "vote_timeouts",
        "retries_sent",
        "transactions_aborted",
    ):
        assert key not in data


def test_idle_injector_is_bit_identical_to_no_injector():
    from repro.net.fault import FaultInjector

    plain = Session(
        Scenario.builder()
        .random_workload(seed=3)
        .distributed()
        .duration(DURATION)
        .seed(11)
        .build()
    )
    baseline = plain.run()

    idle = Session(
        Scenario.builder()
        .random_workload(seed=3)
        .distributed()
        .duration(DURATION)
        .seed(11)
        .build()
    )
    system = idle.deploy()
    system.install_fault_injector(FaultInjector(system.rngs))
    assert baseline.to_json_str() == idle.run().to_json_str()

"""Tests for the offline feasibility analysis and the CLI."""

import pytest

from repro.cli import main
from repro.config.workload_spec import workload_to_json
from repro.sched.offline import analyze_workload, format_report
from repro.sched.task import TaskKind
from repro.workloads.model import Workload

from tests.taskutil import make_task, make_two_node_workload


# ----------------------------------------------------------------------
# Offline analysis
# ----------------------------------------------------------------------
class TestOfflineAnalysis:
    def test_light_workload_schedulable(self):
        report = analyze_workload(make_two_node_workload())
        assert report.all_schedulable_at_home
        assert report.all_schedulable_balanced
        assert report.unschedulable_tasks() == []

    def test_overloaded_home_detected(self):
        heavy_a = make_task(
            "HA", TaskKind.APERIODIC, deadline=1.0, execs=(0.4,),
            homes=("app1",), replicas=[("app2",)],
        )
        heavy_b = make_task(
            "HB", TaskKind.APERIODIC, deadline=1.0, execs=(0.4,),
            homes=("app1",), replicas=[("app2",)],
        )
        workload = Workload(tasks=(heavy_a, heavy_b), app_nodes=("app1", "app2"))
        report = analyze_workload(workload)
        # Both on app1: U=0.8, f(0.8) = 2.4 > 1 -> unschedulable at home.
        assert set(report.unschedulable_tasks()) == {"HA", "HB"}
        # Greedy placement splits them: schedulable balanced.
        assert report.all_schedulable_balanced
        assert report.load_balancing_helps()

    def test_utilization_accounting(self):
        report = analyze_workload(make_two_node_workload())
        assert report.utilization["app1"] == pytest.approx(0.09)
        assert report.utilization["app2"] == pytest.approx(0.05)

    def test_saturated_processor_gives_infinite_sum(self):
        a = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.6,), homes=("app1",)
        )
        b = make_task(
            "B", TaskKind.APERIODIC, deadline=1.0, execs=(0.6,), homes=("app1",)
        )
        workload = Workload(tasks=(a, b), app_nodes=("app1",))
        report = analyze_workload(workload)
        assert all(r.condition_sum == float("inf") for r in report.home_results)

    def test_format_report_marks_over(self):
        heavy = make_task(
            "H", TaskKind.APERIODIC, deadline=1.0, execs=(0.9,), homes=("app1",)
        )
        workload = Workload(tasks=(heavy,), app_nodes=("app1",))
        text = format_report(analyze_workload(workload))
        assert "OVER" in text

    def test_priority_levels_in_report(self):
        report = analyze_workload(make_two_node_workload())
        by_id = {r.task_id: r for r in report.home_results}
        # A1 deadline 0.5 < P1 deadline 1.0 -> higher priority level 0.
        assert by_id["A1"].priority_level == 0
        assert by_id["P1"].priority_level == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def spec_file(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(workload_to_json(make_two_node_workload()))
        return str(path)

    def test_combos_lists_fifteen(self, capsys):
        assert main(["combos"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 15

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_analyze(self, tmp_path, capsys):
        assert main(["analyze", self.spec_file(tmp_path)]) == 0
        assert "synthetic utilization" in capsys.readouterr().out

    def test_configure_with_answers(self, tmp_path, capsys):
        assert main(
            ["configure", self.spec_file(tmp_path), "--answers", "Y,Y,N,PJ"]
        ) == 0
        out = capsys.readouterr().out
        assert "strategy combination: J_J_J" in out
        assert "<DeploymentPlan" in out

    def test_configure_writes_xml(self, tmp_path, capsys):
        xml_path = tmp_path / "plan.xml"
        assert main(
            [
                "configure",
                self.spec_file(tmp_path),
                "--answers",
                "N,Y,Y,PT",
                "--xml-out",
                str(xml_path),
            ]
        ) == 0
        assert xml_path.read_text().startswith("<DeploymentPlan")

    def test_run(self, tmp_path, capsys):
        assert main(
            [
                "run",
                self.spec_file(tmp_path),
                "--combo",
                "J_J_T",
                "--duration",
                "5",
            ]
        ) == 0
        assert "accepted_utilization_ratio" in capsys.readouterr().out

    def test_figure8_command(self, capsys):
        assert main(["figure8", "--duration", "10"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure5_command_small(self, capsys):
        assert main(
            ["figure5", "--sets", "1", "--duration", "10"]
        ) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_ablation_command_small(self, capsys):
        assert main(["ablation", "--sets", "1", "--duration", "20"]) == 0
        assert "Deferrable Server" in capsys.readouterr().out

    def test_bad_answers_rejected(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["configure", self.spec_file(tmp_path), "--answers", "Y,Y"])

"""End-to-end property tests: middleware invariants over random
workloads and strategy combinations."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import valid_combinations
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import Workload

NODES = ("app1", "app2", "app3")


@st.composite
def small_workloads(draw):
    """Random 2-4 task workloads over three processors, light enough to
    finish fast but heavy enough to trigger occasional rejections."""
    n_tasks = draw(st.integers(min_value=2, max_value=4))
    tasks = []
    for i in range(n_tasks):
        kind = draw(st.sampled_from(list(TaskKind)))
        deadline = draw(st.sampled_from([0.5, 1.0, 2.0]))
        n_sub = draw(st.integers(min_value=1, max_value=3))
        util = draw(st.sampled_from([0.1, 0.2, 0.35]))
        subtasks = []
        for j in range(n_sub):
            home = draw(st.sampled_from(NODES))
            replica = draw(
                st.sampled_from([(), tuple(n for n in NODES if n != home)[:1]])
            )
            subtasks.append(
                SubtaskSpec(
                    index=j,
                    execution_time=util * deadline / n_sub,
                    home=home,
                    replicas=replica,
                )
            )
        tasks.append(
            TaskSpec(
                task_id=f"T{i}",
                kind=kind,
                deadline=deadline,
                subtasks=tuple(subtasks),
                period=deadline if kind is TaskKind.PERIODIC else None,
                phase=draw(st.sampled_from([0.0, 0.2, 0.7])),
            )
        )
    return Workload(tasks=tuple(tasks), app_nodes=NODES)


combos = st.sampled_from(valid_combinations())


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_workloads(), combos, st.integers(min_value=0, max_value=100))
def test_middleware_invariants(workload, combo, seed):
    """For any workload, combination and seed:

    * every arriving job is either released or rejected (none stuck);
    * counters and the accepted utilization ratio stay consistent;
    * every released job completes within the drain window;
    * released jobs meet their end-to-end deadlines (AUB guarantee, at
      LAN-scale delays with calibrated overheads);
    * the ledger is non-negative and empty after all deadlines pass.
    """
    system = MiddlewareSystem(workload, combo, seed=seed)
    results = system.run(duration=8.0)
    metrics = results.metrics

    assert metrics.released_jobs + metrics.rejected_jobs == metrics.arrived_jobs
    assert 0.0 <= results.accepted_utilization_ratio <= 1.0 + 1e-9
    assert metrics.completed_jobs == metrics.released_jobs
    assert metrics.latency.deadline_misses == 0

    for node in workload.app_nodes:
        util = system.ac.ledger.utilization(node)
        assert util >= 0.0
        # Reserved (AC-per-task) contributions legitimately persist; all
        # per-job contributions must have expired after the drain.
        if combo.ac.value == "J":
            assert util == 0.0 or util < 1.0

    # No job left held inside any task effector.
    for te in system.env.task_effectors.values():
        assert not te.waiting

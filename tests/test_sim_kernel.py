"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import DEFAULT_PRIORITY, MSEC, USEC, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.25]
    assert sim.now == 3.25


def test_same_time_events_fire_in_priority_then_fifo_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(1.0, fired.append, "hi", priority=1)
    sim.schedule(1.0, fired.append, "b")
    sim.run()
    assert fired == ["hi", "a", "b"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, "x")
    sim.run()
    assert sim.now == 5.0 and fired == ["x"]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(10.0, fired.append, "out")
    sim.run(until=5.0)
    assert fired == ["in"]
    assert sim.now == 5.0
    assert sim.pending_events == 1


def test_run_until_can_be_resumed():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    sim.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_max_events_bounds_dispatch():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=4)
    assert sim.events_executed == 4


def test_drain_discards_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.drain()
    sim.run()
    assert fired == []


def test_simulator_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_event_count_tracks_dispatches():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_unit_constants():
    assert USEC == pytest.approx(1e-6)
    assert MSEC == pytest.approx(1e-3)
    assert DEFAULT_PRIORITY == 100


def test_zero_delay_event_fires_at_now():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, fired.append, sim.now))
    sim.run()
    assert fired == [1.0]


# ----------------------------------------------------------------------
# Batched same-timestamp delivery
# ----------------------------------------------------------------------
def test_schedule_batch_coalesces_same_timestamp_payloads():
    sim = Simulator()
    batches = []
    for i in range(4):
        sim.schedule_batch(2.0, batches.append, i)
    sim.schedule_batch(3.0, batches.append, "later")
    sim.run()
    # One delivery per (time, priority, callback), payloads in order.
    assert batches == [[0, 1, 2, 3], ["later"]]
    assert sim.events_executed == 2


def test_schedule_batch_orders_against_plain_events():
    sim = Simulator()
    order = []
    sim.schedule_at(1.0, order.append, "before")
    sim.schedule_batch(1.0, lambda p: order.append(tuple(p)), "x")
    sim.schedule_batch(1.0, lambda p: None, "ignored-other-callback")
    sim.schedule_at(1.0, order.append, "after")
    sim.run()
    # The batch keeps its first payload's heap position.
    assert order == ["before", ("x",), "after"]


def test_schedule_batch_cancel_drops_whole_batch():
    sim = Simulator()
    batches = []
    handle = sim.schedule_batch(1.0, batches.append, "a")
    assert sim.schedule_batch(1.0, batches.append, "b") is handle
    handle.cancel()
    # A payload scheduled after cancellation starts a fresh batch.
    sim.schedule_batch(1.0, batches.append, "c")
    sim.run()
    assert batches == [["c"]]


def test_schedule_batch_from_inside_callback_starts_fresh_batch():
    sim = Simulator()
    batches = []

    def deliver(payloads):
        batches.append(list(payloads))
        if payloads == ["first"]:
            sim.schedule_batch(sim.now, deliver, "second")

    sim.schedule_batch(1.0, deliver, "first")
    sim.run()
    assert batches == [["first"], ["second"]]


def test_drain_discards_open_batches():
    sim = Simulator()
    batches = []
    sim.schedule_batch(1.0, batches.append, "x")
    sim.drain()
    sim.run()
    assert batches == []
    # The key is free again after the drain.
    sim.schedule_batch(1.0, batches.append, "y")
    sim.run()
    assert batches == [["y"]]

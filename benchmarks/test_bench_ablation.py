"""Benchmark: ablations beyond the paper's figures.

1. AUB vs Deferrable Server admission (the comparison that motivated the
   paper's choice of AUB, section 2).
2. Overhead sensitivity: how the accepted utilization ratio responds to
   scaling all middleware operation costs (the trade-off the paper asks
   developers to weigh in section 4.2).
3. Simulation-substrate throughput: events/second of the full middleware
   stack, documenting the cost of the simulated testbed.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.experiments import run_aub_vs_deferrable
from repro.experiments.report import format_table
from repro.sim.rng import RngRegistry
from repro.workloads.generator import generate_random_workload

from conftest import bench_duration, bench_sets


def test_bench_aub_vs_deferrable(benchmark):
    result = benchmark(
        lambda: run_aub_vs_deferrable(
            n_sets=min(4, bench_sets()), duration=60.0, seed=2008
        )
    )
    print()
    print(result.format())
    assert 0.0 < result.aub_mean <= 1.0
    assert 0.0 < result.ds_mean <= 1.0


def test_bench_overhead_sensitivity(benchmark):
    """Accepted ratio under 0x, 1x, 10x, 50x middleware cost scaling."""
    workload = generate_random_workload(RngRegistry(2008).stream("wl"))
    combo = StrategyCombo.from_label("J_J_J")
    duration = min(60.0, bench_duration())

    def run_at(scale):
        cost = CostModel.zero() if scale == 0 else CostModel().scaled(scale)
        system = MiddlewareSystem(workload, combo, cost_model=cost, seed=5)
        return system.run(duration).accepted_utilization_ratio

    rows = []
    for scale in (0, 1, 10, 50):
        rows.append([f"{scale}x", run_at(scale)])
    benchmark(lambda: run_at(1))
    print()
    print(
        format_table(
            ["cost scale", "accepted utilization ratio"],
            rows,
            title="Ablation — middleware overhead sensitivity (J_J_J)",
        )
    )
    # Calibrated overheads (~1 ms per admission) are negligible against
    # deadlines of 250 ms - 10 s: the ratio must be stable at 1x.
    assert abs(rows[1][1] - rows[0][1]) < 0.05


def test_bench_simulation_throughput(benchmark):
    """Events/second of the full middleware simulation."""
    workload = generate_random_workload(RngRegistry(2008).stream("wl"))
    combo = StrategyCombo.from_label("J_J_J")

    def run_once():
        system = MiddlewareSystem(workload, combo, seed=5)
        return system.run(30.0)

    results = benchmark(run_once)
    events_per_sec = results.events_executed / benchmark.stats["mean"]
    print(f"\nsimulated events per wall second: {events_per_sec:,.0f}")
    assert results.events_executed > 0

"""Fail when hot-path throughput or latency regresses against a baseline.

Compares a freshly measured ``BENCH_hotpath.json`` with the baseline
committed at the repo root (saved aside before the benchmark overwrote
it).  Every gated metric carries a *direction* resolved from its name
suffix through :data:`DIRECTION_BY_SUFFIX`: throughputs (``_per_sec``)
and protocol savings (``_reduction``) are higher-is-better and fail when
they fall more than ``--tolerance`` (default 30%) below the baseline;
latency quantiles (``.p99_s`` et al.) are lower-is-better and fail when
they *rise* more than the tolerance.  A gated metric whose suffix is not
registered is a hard error (exit 2) — a new metric must declare its
direction before the gate will compare it, so a latency series can never
be silently gated in the throughput direction or vice versa.

*Scales* absent from either file — e.g. rows dropped by
``REPRO_BENCH_HOTPATH_SCALES`` on the reduced CI grid — are skipped, so
the gate works on any grid subset.  Whole tracked *sections* missing
from the fresh record are a different story: that means the benchmark
did not produce what the gate expects (truncated run, stale file), so
the script exits 2 with a section-by-section message instead of
silently passing or crashing.  Baseline-side sections may be absent
(older baselines predate newer benchmarks) and are skipped as before.

``--normalize`` cancels machine speed using each file's kernel event
rate as a proxy (the kernel benchmark is pure interpreter + heap work
that none of this repo's hot-path changes target): throughputs are
*divided* by their file's kernel rate, latencies are *multiplied* by it
(a slower machine has a lower kernel rate and proportionally higher
latencies, so the product is machine-neutral).  Deterministic counters
(``_reduction``) are never normalized.  Without the flag the comparison
is absolute (right for same-machine A/B runs).

Usage::

    python benchmarks/check_hotpath_regression.py BASELINE.json FRESH.json \
        [--tolerance 0.30] [--normalize]

Exit status: 0 all comparable metrics within tolerance, 1 regression (or
no comparable metrics at all), 2 unreadable record, tracked section
missing from the fresh file, or a gated metric with no registered
direction.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple


#: Top-level sections every complete BENCH_hotpath.json carries.  The
#: reduced CI grid drops *scales inside* admission sections, never whole
#: sections, so a missing section in a fresh record is always an error.
REQUIRED_SECTIONS = (
    "kernel_events_per_sec",
    "admission",
    "admission_batch",
    "admission_latency",
    "lb_placement_batch",
    "ledger_sharded",
    "distributed_round",
)

HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"

#: Metric-direction registry, keyed by name suffix *including* the
#: boundary character before it ("_" or ".").  Each entry is
#: ``(direction, normalized)``: direction picks which side of the
#: tolerance band fails, ``normalized`` marks wall-clock metrics that
#: ``--normalize`` may rescale by the kernel rate — deterministic
#: counters stay absolute on any machine.  Gated metrics whose suffix is
#: missing here make the gate exit 2 rather than guess a direction.
DIRECTION_BY_SUFFIX: Dict[str, Tuple[str, bool]] = {
    "_per_sec": (HIGHER_IS_BETTER, True),
    "_reduction": (HIGHER_IS_BETTER, False),
    ".p50_s": (LOWER_IS_BETTER, True),
    ".p95_s": (LOWER_IS_BETTER, True),
    ".p99_s": (LOWER_IS_BETTER, True),
}


def metric_direction(name: str) -> Optional[Tuple[str, bool]]:
    """``(direction, normalized)`` for a gated metric, None if unknown."""
    for suffix in sorted(DIRECTION_BY_SUFFIX, key=len, reverse=True):
        if name.endswith(suffix):
            return DIRECTION_BY_SUFFIX[suffix]
    return None


def missing_sections(data: dict) -> list:
    return [name for name in REQUIRED_SECTIONS if name not in data]


def gated_metrics(data: dict) -> Iterator[Tuple[str, float]]:
    """Every metric the gate compares, throughput and latency alike."""
    yield "kernel_events_per_sec", data.get("kernel_events_per_sec")
    for scale, row in sorted(data.get("admission", {}).items(), key=lambda kv: int(kv[0])):
        yield f"admission[{scale}].incremental_tests_per_sec", row.get(
            "incremental_tests_per_sec"
        )
    for scale, row in sorted(
        data.get("admission_batch", {}).items(), key=lambda kv: int(kv[0])
    ):
        yield f"admission_batch[{scale}].batch_tests_per_sec", row.get(
            "batch_tests_per_sec"
        )
    # Latency gates the tail: p99 is what an admission deadline cares
    # about.  p50 is reported in the record but not gated — it sits near
    # the timer floor where scheduling noise dominates.
    for scale, row in sorted(
        data.get("admission_latency", {}).items(), key=lambda kv: int(kv[0])
    ):
        yield f"admission_latency[{scale}].p99_s", row.get("p99_s")
    for scale, row in sorted(
        data.get("lb_placement_batch", {}).items(), key=lambda kv: int(kv[0])
    ):
        yield f"lb_placement_batch[{scale}].batch_placements_per_sec", row.get(
            "batch_placements_per_sec"
        )
    ledger = data.get("ledger_sharded", {})
    yield "ledger_sharded.batch_ops_per_sec", ledger.get("batch_ops_per_sec")
    # Deterministic protocol counters: rounds saved by piggybacking a
    # burst's reservations (not wall-clock, so never normalized away).
    distributed = data.get("distributed_round", {})
    yield "distributed_round.round_reduction", distributed.get(
        "round_reduction"
    )


def _fmt(value: float) -> str:
    return f"{value:>14,.0f}" if abs(value) >= 1000 else f"{value:>14.3g}"


def compare(
    baseline: dict, fresh: dict, tolerance: float, normalize: bool = False
) -> int:
    base_scale = fresh_scale = 1.0
    if normalize:
        base_scale = baseline.get("kernel_events_per_sec") or 1.0
        fresh_scale = fresh.get("kernel_events_per_sec") or 1.0
        print(
            f"normalizing by kernel rate: baseline {base_scale:,.0f} ev/s, "
            f"fresh {fresh_scale:,.0f} ev/s"
        )
    base_metrics: Dict[str, float] = {
        name: value
        for name, value in gated_metrics(baseline)
        if value is not None
    }
    failures = 0
    checked = 0
    for name, value in gated_metrics(fresh):
        spec = metric_direction(name)
        if spec is None:
            print(
                f"gated metric {name!r} has no registered direction; add "
                "its suffix to DIRECTION_BY_SUFFIX in "
                "benchmarks/check_hotpath_regression.py before gating it",
                file=sys.stderr,
            )
            return 2
        direction, normalizable = spec
        reference = base_metrics.get(name)
        if value is None or reference is None or reference <= 0:
            continue
        if normalize and name == "kernel_events_per_sec":
            # The normalizer itself cannot gate its own comparison.
            continue
        checked += 1
        if normalize and normalizable:
            if direction == HIGHER_IS_BETTER:
                ratio = (value / fresh_scale) / (reference / base_scale)
            else:
                # A slower machine has a lower kernel rate and
                # proportionally higher latency; the product cancels both.
                ratio = (value * fresh_scale) / (reference * base_scale)
        else:
            ratio = value / reference
        status = "ok"
        if direction == HIGHER_IS_BETTER:
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures += 1
        elif ratio > 1.0 + tolerance:
            status = "REGRESSION"
            failures += 1
        print(
            f"  {name:<48} {_fmt(reference)} -> {_fmt(value)} "
            f"({ratio:>6.2f}x, {direction} is better)  {status}"
        )
    if checked == 0:
        print("no comparable metrics between baseline and fresh run")
        return 1
    if failures:
        print(
            f"{failures} metric(s) regressed more than "
            f"{tolerance:.0%} against the committed baseline"
        )
        return 1
    print(f"all {checked} comparable metrics within {tolerance:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--normalize", action="store_true",
        help="rescale wall-clock metrics by each file's kernel rate "
        "(cross-machine comparisons, e.g. committed baseline vs CI runner)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = json.loads(args.baseline.read_text())
        fresh = json.loads(args.fresh.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read benchmark record: {exc}", file=sys.stderr)
        return 2
    missing = missing_sections(fresh)
    if missing:
        print(
            f"{args.fresh} is missing tracked section(s): "
            f"{', '.join(missing)}; the benchmark run was truncated or the "
            "record is stale — re-run benchmarks/test_bench_hotpath.py",
            file=sys.stderr,
        )
        return 2
    return compare(baseline, fresh, args.tolerance, args.normalize)


if __name__ == "__main__":
    sys.exit(main())

"""Exit-code contract of ``check_hotpath_regression.py``.

0: all comparable metrics within tolerance.  1: a regression (or nothing
comparable).  2: unreadable record, or a tracked section missing from
the fresh file — distinct so CI can tell "the hot path got slower" from
"the benchmark never produced the numbers".
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from check_hotpath_regression import REQUIRED_SECTIONS, main  # noqa: E402


def _record(rate=100_000.0):
    return {
        "kernel_events_per_sec": 1_000_000.0,
        "admission": {"100": {"incremental_tests_per_sec": rate}},
        "admission_batch": {"100": {"batch_tests_per_sec": rate}},
        "lb_placement_batch": {"100": {"batch_placements_per_sec": rate}},
        "ledger_sharded": {"batch_ops_per_sec": rate},
        "distributed_round": {"round_reduction": 10.0},
    }


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def test_clean_pass_exits_zero(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", _record()),
    ]
    assert main(argv) == 0
    capsys.readouterr()


def test_regression_exits_one(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record(rate=100_000.0)),
        _write(tmp_path, "fresh.json", _record(rate=10_000.0)),
    ]
    assert main(argv) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_missing_tracked_section_exits_two(tmp_path, capsys):
    fresh = _record()
    del fresh["ledger_sharded"]
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", fresh),
    ]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "missing tracked section(s): ledger_sharded" in err


def test_missing_file_exits_two(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record()),
        str(tmp_path / "nope.json"),
    ]
    assert main(argv) == 2
    assert "cannot read benchmark record" in capsys.readouterr().err


def test_dropped_scale_rows_still_skip(tmp_path, capsys):
    # The reduced CI grid drops scales *inside* sections; that must stay
    # a skip, not an error and not a failure.
    fresh = _record()
    fresh["admission"] = {}
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", fresh),
    ]
    assert main(argv) == 0
    capsys.readouterr()


def test_committed_record_has_every_tracked_section():
    committed = json.loads(
        (Path(__file__).resolve().parents[1] / "BENCH_hotpath.json").read_text()
    )
    assert all(section in committed for section in REQUIRED_SECTIONS)

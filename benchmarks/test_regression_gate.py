"""Exit-code contract of ``check_hotpath_regression.py``.

0: all comparable metrics within tolerance.  1: a regression (or nothing
comparable).  2: unreadable record, or a tracked section missing from
the fresh file — distinct so CI can tell "the hot path got slower" from
"the benchmark never produced the numbers".
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import check_hotpath_regression  # noqa: E402
from check_hotpath_regression import (  # noqa: E402
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    REQUIRED_SECTIONS,
    main,
    metric_direction,
)


def _record(rate=100_000.0, p99=2e-5, kernel=1_000_000.0):
    return {
        "kernel_events_per_sec": kernel,
        "admission": {"100": {"incremental_tests_per_sec": rate}},
        "admission_batch": {"100": {"batch_tests_per_sec": rate}},
        "admission_latency": {
            "100": {"p50_s": p99 / 4.0, "p95_s": p99 / 2.0, "p99_s": p99}
        },
        "lb_placement_batch": {"100": {"batch_placements_per_sec": rate}},
        "ledger_sharded": {"batch_ops_per_sec": rate},
        "distributed_round": {"round_reduction": 10.0},
    }


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def test_clean_pass_exits_zero(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", _record()),
    ]
    assert main(argv) == 0
    capsys.readouterr()


def test_regression_exits_one(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record(rate=100_000.0)),
        _write(tmp_path, "fresh.json", _record(rate=10_000.0)),
    ]
    assert main(argv) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_missing_tracked_section_exits_two(tmp_path, capsys):
    fresh = _record()
    del fresh["ledger_sharded"]
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", fresh),
    ]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "missing tracked section(s): ledger_sharded" in err


def test_missing_file_exits_two(tmp_path, capsys):
    argv = [
        _write(tmp_path, "base.json", _record()),
        str(tmp_path / "nope.json"),
    ]
    assert main(argv) == 2
    assert "cannot read benchmark record" in capsys.readouterr().err


def test_dropped_scale_rows_still_skip(tmp_path, capsys):
    # The reduced CI grid drops scales *inside* sections; that must stay
    # a skip, not an error and not a failure.
    fresh = _record()
    fresh["admission"] = {}
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", fresh),
    ]
    assert main(argv) == 0
    capsys.readouterr()


def test_latency_rise_is_a_regression(tmp_path, capsys):
    # p99 is lower-is-better: a 10x latency increase must fail even
    # though every throughput is unchanged.
    argv = [
        _write(tmp_path, "base.json", _record(p99=2e-5)),
        _write(tmp_path, "fresh.json", _record(p99=2e-4)),
    ]
    assert main(argv) == 1
    out = capsys.readouterr().out
    assert "admission_latency[100].p99_s" in out
    assert "REGRESSION" in out


def test_latency_drop_passes(tmp_path, capsys):
    # Getting faster is never a regression in either direction.
    argv = [
        _write(tmp_path, "base.json", _record(p99=2e-4)),
        _write(tmp_path, "fresh.json", _record(p99=2e-5)),
    ]
    assert main(argv) == 0
    capsys.readouterr()


def test_normalize_cancels_machine_speed_both_directions(tmp_path, capsys):
    # A uniformly 2x-slower machine: kernel rate and throughputs halve,
    # latency doubles.  Normalized, everything is a 1.00x ratio.
    base = _record(rate=100_000.0, p99=2e-5, kernel=1_000_000.0)
    slow = _record(rate=50_000.0, p99=4e-5, kernel=500_000.0)
    argv = [
        _write(tmp_path, "base.json", base),
        _write(tmp_path, "fresh.json", slow),
        "--normalize",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    # Without --normalize the same pair regresses in both directions.
    assert main(argv[:2]) == 1
    assert capsys.readouterr().out.count("REGRESSION") >= 2


def test_unknown_suffix_exits_two(tmp_path, capsys, monkeypatch):
    real = check_hotpath_regression.gated_metrics

    def with_rogue_metric(data):
        yield from real(data)
        yield "admission_latency[100].p99_microfortnights", 1.0

    monkeypatch.setattr(
        check_hotpath_regression, "gated_metrics", with_rogue_metric
    )
    argv = [
        _write(tmp_path, "base.json", _record()),
        _write(tmp_path, "fresh.json", _record()),
    ]
    assert main(argv) == 2
    assert "no registered direction" in capsys.readouterr().err


def test_metric_direction_registry():
    assert metric_direction("admission[100].incremental_tests_per_sec") == (
        HIGHER_IS_BETTER,
        True,
    )
    assert metric_direction("distributed_round.round_reduction") == (
        HIGHER_IS_BETTER,
        False,
    )
    assert metric_direction("admission_latency[1000].p99_s") == (
        LOWER_IS_BETTER,
        True,
    )
    assert metric_direction("something.p99_seconds") is None


def test_committed_record_has_every_tracked_section():
    committed = json.loads(
        (Path(__file__).resolve().parents[1] / "BENCH_hotpath.json").read_text()
    )
    assert all(section in committed for section in REQUIRED_SECTIONS)

"""Benchmark: Figure 6 — LB strategy comparison, imbalanced workloads.

Regenerates the paper's Figure 6 (section 7.2) and asserts its findings:
LB per task significantly improves on no LB; LB per job adds little over
per task.
"""

import pytest

from repro.experiments import run_figure6

from conftest import bench_duration, bench_sets


@pytest.fixture(scope="module")
def figure6_result():
    return run_figure6(n_sets=bench_sets(), duration=bench_duration(), seed=2008)


def test_bench_figure6(benchmark, figure6_result):
    def one_group():
        from repro.core.strategies import StrategyCombo

        return run_figure6(
            n_sets=min(3, bench_sets()),
            duration=min(30.0, bench_duration()),
            seed=2008,
            combos=[
                StrategyCombo.from_label("J_J_N"),
                StrategyCombo.from_label("J_J_T"),
                StrategyCombo.from_label("J_J_J"),
            ],
        )

    benchmark(one_group)
    result = figure6_result
    print()
    print(result.format())
    means = result.lb_means()
    print(f"LB-strategy means: {means}")
    assert means["T"] > means["N"] + 0.05, (
        "LB per task must significantly beat no LB under imbalance"
    )
    assert abs(means["J"] - means["T"]) < 0.1, (
        "LB per job must be close to LB per task"
    )
    # Within every (AC, IR) group the no-LB bar is the lowest.
    for key, (none, per_task, per_job) in result.lb_groups().items():
        assert per_task >= none - 0.02, key
    assert result.deadline_misses == 0

"""Benchmark configuration.

Paper-scale knobs can be enabled with environment variables:

* ``REPRO_BENCH_DURATION``  — per-run simulated seconds (default 60; the
  paper ran 300).
* ``REPRO_BENCH_SETS``      — task sets per experiment (default 10, like
  the paper).

Each benchmark prints the reproduced table/figure once at the end of its
measurement so `pytest benchmarks/ --benchmark-only -s` doubles as the
report generator for EXPERIMENTS.md.
"""

import os

import pytest


def bench_duration(default: float = 60.0) -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", default))


def bench_sets(default: int = 10) -> int:
    return int(os.environ.get("REPRO_BENCH_SETS", default))


@pytest.fixture(scope="session")
def duration():
    return bench_duration()


@pytest.fixture(scope="session")
def n_sets():
    return bench_sets()

"""Benchmark: Table 1 mapping + configuration-engine throughput.

Covers the paper's configuration pipeline (sections 4.1 and 6): mapping
characteristics to strategies, generating + validating an XML deployment
plan for the section 7.1 workload, and deploying it.
"""

import random

import pytest

from repro.config.characteristics import ApplicationCharacteristics
from repro.config.engine import ConfigurationEngine
from repro.config.xml_io import parse_xml
from repro.experiments import run_table1
from repro.experiments.table1 import format_rows
from repro.workloads.generator import generate_random_workload


@pytest.fixture(scope="module")
def workload():
    return generate_random_workload(random.Random(2008))


def test_bench_table1_mapping(benchmark):
    rows = benchmark(run_table1)
    print()
    print(format_rows(rows))
    assert all("_" in row.combo_label for row in rows)


def test_bench_configuration_engine(benchmark, workload):
    """Full front-end pass: characteristics -> plan -> XML -> validate."""
    engine = ConfigurationEngine()
    from repro.config.characteristics import OverheadTolerance

    chars = ApplicationCharacteristics(
        job_skipping=True,
        replicated_components=True,
        state_persistence=False,
        overhead_tolerance=OverheadTolerance.PER_JOB,
    )

    def configure():
        return engine.configure(workload, chars)

    result = benchmark(configure)
    assert result.combo.label == "J_J_J"
    plan = parse_xml(result.xml)
    assert plan.combo().label == "J_J_J"
    print(
        f"\nplan: {len(result.plan.instances)} instances, "
        f"{len(result.plan.connections)} connections, "
        f"{len(result.xml)} bytes of XML"
    )


def test_bench_dance_deployment(benchmark, workload):
    """DAnCE-lite deployment of the full 9-task, 6-node system."""
    engine = ConfigurationEngine()
    chars = ApplicationCharacteristics(True, True, False)
    result = engine.configure(workload, chars)

    def deploy():
        return engine.deploy(result, seed=1)

    system = benchmark(deploy)
    assert system.ac is not None and system.lb is not None

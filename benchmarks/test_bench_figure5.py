"""Benchmark: Figure 5 — accepted utilization ratio, 15 valid combos.

Regenerates the paper's Figure 5 bar series (section 7.1 random
workloads) and asserts its qualitative findings:

* enabling idle resetting or load balancing increases accepted
  utilization;
* IR per job (*_J_*) significantly outperforms IR per task / none;
* the J_J_* combinations are the top tier.
"""

import pytest

from repro.experiments import run_figure5

from conftest import bench_duration, bench_sets


@pytest.fixture(scope="module")
def figure5_result():
    return run_figure5(n_sets=bench_sets(), duration=bench_duration(), seed=2008)


def test_bench_figure5(benchmark, figure5_result):
    """Measure one full Figure 5 cell (one combo over all task sets)."""

    def one_combo():
        from repro.core.strategies import StrategyCombo

        return run_figure5(
            n_sets=min(3, bench_sets()),
            duration=min(30.0, bench_duration()),
            seed=2008,
            combos=[StrategyCombo.from_label("J_J_J")],
        )

    benchmark(one_combo)
    result = figure5_result
    print()
    print(result.format())
    groups = result.by_ir_strategy()
    print(f"IR-strategy means: {groups}")
    # Paper findings (shape assertions):
    assert groups["J"] > groups["T"], "IR per job must beat IR per task"
    assert groups["J"] > groups["N"], "IR per job must beat no IR"
    jj = [result.per_combo[l] for l in ("J_J_N", "J_J_T", "J_J_J")]
    others = [v for l, v in result.per_combo.items() if not l.startswith("J_J")]
    assert min(jj) > max(others) - 0.05, "J_J_* must be the top tier"
    assert result.deadline_misses == 0, "admitted jobs must meet deadlines"

"""Benchmark: centralized vs decentralized admission control.

Measures the trade-off the paper's section 3 discusses when justifying
the centralized AC/LB architecture: the decentralized two-phase variant
needs more coordination messages per admission and is more conservative
(slack partitioning), while the centralized design risks a bottleneck
only when admission tests approach task execution times (they do not —
see the AUB micro-benchmark).
"""

import random

import pytest

from repro.core.distributed_ac import DistributedMiddlewareSystem
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.experiments.report import format_table
from repro.workloads.generator import generate_random_workload

from conftest import bench_duration


def test_bench_centralized_vs_distributed(benchmark):
    duration = min(60.0, bench_duration())
    rows = []
    cent_ratios, dist_ratios = [], []
    for seed in range(3):
        workload = generate_random_workload(random.Random(100 + seed))
        centralized = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), seed=seed
        )
        r_cent = centralized.run(duration)
        distributed = DistributedMiddlewareSystem(workload, seed=seed)
        r_dist = distributed.run(duration)
        cent_ratios.append(r_cent.accepted_utilization_ratio)
        dist_ratios.append(r_dist.accepted_utilization_ratio)
        rows.append(
            [
                seed,
                r_cent.accepted_utilization_ratio,
                r_dist.accepted_utilization_ratio,
                r_cent.messages_sent,
                r_dist.messages_sent,
                r_dist.deadline_misses,
            ]
        )

    def one_distributed_run():
        workload = generate_random_workload(random.Random(100))
        return DistributedMiddlewareSystem(workload, seed=0).run(20.0)

    benchmark(one_distributed_run)
    print()
    print(
        format_table(
            ["set", "centralized ratio", "distributed ratio",
             "centralized msgs", "distributed msgs", "dist misses"],
            rows,
            title="Centralized vs decentralized admission control",
        )
    )
    # Decentralized is (up to admission-timing noise) more conservative,
    # and always safe.
    for cent, dist in zip(cent_ratios, dist_ratios):
        assert dist <= cent + 0.05
    assert all(row[5] == 0 for row in rows)

"""Benchmark: centralized vs decentralized admission control.

Measures the trade-off the paper's section 3 discusses when justifying
the centralized AC/LB architecture: the decentralized two-phase variant
needs more coordination messages per admission and is more conservative
(slack partitioning), while the centralized design risks a bottleneck
only when admission tests approach task execution times (they do not —
see the AUB micro-benchmark).

Also records the ``distributed_round`` section of ``BENCH_hotpath.json``:
coordination rounds and reserve messages for a simultaneous burst, with
and without piggybacking (arrival batching) — the O(burst) -> O(1)
claim, in counters.
"""

import json
import random
from pathlib import Path

import pytest

from repro.core.cost_model import CostModel
from repro.core.distributed_ac import DistributedMiddlewareSystem
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.experiments.report import format_table
from repro.net.latency import ConstantDelay
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.generator import generate_random_workload
from repro.workloads.model import Workload

from conftest import bench_duration

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_hotpath.json"


def test_bench_centralized_vs_distributed(benchmark):
    duration = min(60.0, bench_duration())
    rows = []
    cent_ratios, dist_ratios = [], []
    for seed in range(3):
        workload = generate_random_workload(random.Random(100 + seed))
        centralized = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), seed=seed
        )
        r_cent = centralized.run(duration)
        distributed = DistributedMiddlewareSystem(workload, seed=seed)
        r_dist = distributed.run(duration)
        cent_ratios.append(r_cent.accepted_utilization_ratio)
        dist_ratios.append(r_dist.accepted_utilization_ratio)
        rows.append(
            [
                seed,
                r_cent.accepted_utilization_ratio,
                r_dist.accepted_utilization_ratio,
                r_cent.messages_sent,
                r_dist.messages_sent,
                r_dist.deadline_misses,
            ]
        )

    def one_distributed_run():
        workload = generate_random_workload(random.Random(100))
        return DistributedMiddlewareSystem(workload, seed=0).run(20.0)

    benchmark(one_distributed_run)
    print()
    print(
        format_table(
            ["set", "centralized ratio", "distributed ratio",
             "centralized msgs", "distributed msgs", "dist misses"],
            rows,
            title="Centralized vs decentralized admission control",
        )
    )
    # Decentralized is (up to admission-timing noise) more conservative,
    # and always safe.
    for cent, dist in zip(cent_ratios, dist_ratios):
        assert dist <= cent + 0.05
    assert all(row[5] == 0 for row in rows)


def test_bench_piggybacked_rounds():
    """Coordination cost of a simultaneous burst, sequential two-phase
    rounds vs one piggybacked multi-reservation round.

    The counters are deterministic (fixed seed, jitter-free cost model),
    so the section gates exact protocol cost rather than wall-clock."""
    burst = 32
    task = TaskSpec(
        task_id="S",
        kind=TaskKind.APERIODIC,
        deadline=5.0,
        subtasks=(
            SubtaskSpec(index=0, execution_time=0.005, home="app1"),
            SubtaskSpec(index=1, execution_time=0.005, home="app2"),
        ),
    )
    workload = Workload(tasks=(task,), app_nodes=("app1", "app2"))
    counters = {}
    for batching in (False, True):
        system = DistributedMiddlewareSystem(
            workload,
            seed=1,
            cost_model=CostModel(jitter=0.0),
            delay_model=ConstantDelay(0.001),
            arrival_batching=batching,
        )
        for i in range(burst):
            system.sim.schedule_at(0.0, system._base._arrive, task, i, 0.0)
        system.sim.run(until=1.0)
        counters[batching] = {
            "rounds": sum(
                ac.coordination_rounds for ac in system.acs.values()
            ),
            "reserve_messages": sum(
                ac.reserve_messages for ac in system.acs.values()
            ),
            "admitted": sum(ac.admitted_jobs for ac in system.acs.values()),
        }
    sequential, piggybacked = counters[False], counters[True]
    section = {
        "burst": burst,
        "rounds_sequential": sequential["rounds"],
        "rounds_piggybacked": piggybacked["rounds"],
        "reserve_messages_sequential": sequential["reserve_messages"],
        "reserve_messages_piggybacked": piggybacked["reserve_messages"],
        "round_reduction": sequential["rounds"] / piggybacked["rounds"],
    }
    print()
    print(
        f"distributed coordination, burst of {burst}: "
        f"{sequential['rounds']} rounds / "
        f"{sequential['reserve_messages']} reserve msgs sequential -> "
        f"{piggybacked['rounds']} / "
        f"{piggybacked['reserve_messages']} piggybacked "
        f"({section['round_reduction']:.0f}x fewer rounds)"
    )
    # Merge into the shared artifact; the hotpath benchmark preserves
    # unknown sections the same way, so write order does not matter.
    record = {}
    if RESULT_FILE.exists():
        try:
            record = json.loads(RESULT_FILE.read_text())
        except json.JSONDecodeError:
            record = {}
    record["distributed_round"] = section
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")

    # O(burst) -> O(1): the whole burst coordinates in one round.
    assert piggybacked["rounds"] == 1
    assert sequential["rounds"] == burst
    assert piggybacked["reserve_messages"] == len(workload.app_nodes)
    # Piggybacking must not change a single decision.
    assert piggybacked["admitted"] == sequential["admitted"] > 0

"""Collect ``BENCH_hotpath.json`` across commits into a trajectory table.

CI uploads ``BENCH_hotpath.json`` per push and the file is committed at
the repo root, so its git history *is* the performance trajectory.  This
script walks every commit that touched the artifact, parses each
revision, folds in optional downloaded-artifact directories and the
working tree, and renders ``docs/BENCH_TRAJECTORY.md``: one row per
sample with the headline throughputs plus an ASCII trend bar per row so
regressions are visible in the diff of the dashboard itself.

Usage::

    python benchmarks/plot_trajectory.py [ARTIFACT_DIR ...] \
        [--output docs/BENCH_TRAJECTORY.md] [--repo .]

``ARTIFACT_DIR`` may contain ``*.json`` files downloaded from CI (e.g.
the ``bench-hotpath`` artifacts of older runs); they are labeled by file
name and sorted after the git history.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

ARTIFACT = "BENCH_hotpath.json"
BAR_WIDTH = 24


@dataclass
class Sample:
    """One benchmark record with its provenance."""

    label: str
    date: str
    kernel_events_per_sec: float
    incremental_1000: Optional[float]
    incremental_speedup_1000: Optional[float]
    batch_1000: Optional[float]
    batch_speedup_1000: Optional[float]
    placement_1000: Optional[float]
    placement_speedup_1000: Optional[float]
    ledger_batch_ops: Optional[float]
    round_reduction: Optional[float]
    latency_p50_1000: Optional[float]
    latency_p99_1000: Optional[float]

    @classmethod
    def from_json(cls, label: str, date: str, data: dict) -> "Sample":
        admission = data.get("admission", {}).get("1000", {})
        batch = data.get("admission_batch", {}).get("1000", {})
        placement = data.get("lb_placement_batch", {}).get("1000", {})
        ledger = data.get("ledger_sharded", {})
        distributed = data.get("distributed_round", {})
        latency = data.get("admission_latency", {}).get("1000", {})
        return cls(
            label=label,
            date=date,
            kernel_events_per_sec=data.get("kernel_events_per_sec", 0.0),
            incremental_1000=admission.get("incremental_tests_per_sec"),
            incremental_speedup_1000=admission.get("speedup"),
            batch_1000=batch.get("batch_tests_per_sec"),
            batch_speedup_1000=batch.get("speedup"),
            placement_1000=placement.get("batch_placements_per_sec"),
            placement_speedup_1000=placement.get("speedup"),
            ledger_batch_ops=ledger.get("batch_ops_per_sec"),
            round_reduction=distributed.get("round_reduction"),
            latency_p50_1000=latency.get("p50_s"),
            latency_p99_1000=latency.get("p99_s"),
        )


def _git(repo: Path, *args: str) -> str:
    return subprocess.check_output(
        ["git", "-C", str(repo), *args], text=True
    ).strip()


def collect_git_history(repo: Path) -> List[Sample]:
    """One sample per commit that touched the artifact, oldest first."""
    try:
        log = _git(
            repo, "log", "--follow", "--format=%H %h %cs", "--", ARTIFACT
        )
    except subprocess.CalledProcessError:
        return []
    samples = []
    for line in reversed(log.splitlines()):
        sha, short, date = line.split()
        try:
            raw = _git(repo, "show", f"{sha}:{ARTIFACT}")
            data = json.loads(raw)
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue  # commit removed or corrupted the artifact
        samples.append(Sample.from_json(short, date, data))
    return samples


def collect_directory(directory: Path) -> List[Sample]:
    """Samples from downloaded CI artifacts (labelled by file name)."""
    samples = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        samples.append(Sample.from_json(path.stem, "-", data))
    return samples


def collect_worktree(repo: Path) -> List[Sample]:
    path = repo / ARTIFACT
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    committed = collect_git_history(repo)
    sample = Sample.from_json("worktree", "-", data)
    # Skip the worktree row when it duplicates the committed tip.
    if committed and vars(committed[-1]) | {"label": "", "date": ""} == vars(
        sample
    ) | {"label": "", "date": ""}:
        return []
    return [sample]


def _bar(value: Optional[float], peak: float) -> str:
    if not value or peak <= 0:
        return ""
    filled = max(1, round(BAR_WIDTH * value / peak))
    return "`" + "#" * filled + "." * (BAR_WIDTH - filled) + "`"


def _fmt(value: Optional[float], suffix: str = "") -> str:
    return f"{value:,.0f}{suffix}" if value is not None else "—"


def _fmt_x(value: Optional[float]) -> str:
    return f"{value:.1f}x" if value is not None else "—"


def _fmt_us(value: Optional[float]) -> str:
    """Seconds rendered as microseconds (latency columns)."""
    return f"{value * 1e6:,.1f}us" if value is not None else "—"


def render(samples: List[Sample]) -> str:
    lines = [
        "# Hot-path benchmark trajectory",
        "",
        "Generated by `python benchmarks/plot_trajectory.py` from the git",
        f"history of `{ARTIFACT}` (plus any downloaded CI artifacts passed",
        "on the command line).  All throughput columns are measured at",
        "1000 registered tasks; the bar tracks incremental admission",
        "throughput relative to the best sample in the table.",
        "",
    ]
    if not samples:
        lines.append("_No benchmark samples found._")
        return "\n".join(lines) + "\n"
    peak = max(s.incremental_1000 or 0.0 for s in samples)
    lines += [
        "| commit | date | kernel ev/s | incr tests/s | vs naive "
        "| batch tests/s | vs per-arrival | LB plans/s | vs probe "
        "| ledger batch ops/s | rounds saved | p50 lat | p99 lat | trend |",
        "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---|",
    ]
    for s in samples:
        lines.append(
            f"| {s.label} | {s.date} "
            f"| {_fmt(s.kernel_events_per_sec)} "
            f"| {_fmt(s.incremental_1000)} "
            f"| {_fmt_x(s.incremental_speedup_1000)} "
            f"| {_fmt(s.batch_1000)} "
            f"| {_fmt_x(s.batch_speedup_1000)} "
            f"| {_fmt(s.placement_1000)} "
            f"| {_fmt_x(s.placement_speedup_1000)} "
            f"| {_fmt(s.ledger_batch_ops)} "
            f"| {_fmt_x(s.round_reduction)} "
            f"| {_fmt_us(s.latency_p50_1000)} "
            f"| {_fmt_us(s.latency_p99_1000)} "
            f"| {_bar(s.incremental_1000, peak)} |"
        )
    lines += [
        "",
        "Columns missing in old samples (batched admission, sharded",
        "ledger, batched LB placement, piggybacked coordination rounds,",
        "admission-decision latency quantiles) predate the corresponding",
        "benchmark sections.  Latency columns are the per-call",
        "`admissible()` wall-clock p50/p99 at 1000 tasks — lower is",
        "better, and the regression gate guards the p99.",
        "",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifact_dirs", nargs="*", type=Path,
        help="directories of downloaded CI benchmark artifacts",
    )
    parser.add_argument(
        "--repo", type=Path, default=Path(__file__).resolve().parents[1]
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="destination markdown (default docs/BENCH_TRAJECTORY.md; "
        "'-' prints to stdout)",
    )
    args = parser.parse_args(argv)
    samples = collect_git_history(args.repo)
    for directory in args.artifact_dirs:
        samples.extend(collect_directory(directory))
    samples.extend(collect_worktree(args.repo))
    text = render(samples)
    if args.output and str(args.output) == "-":
        sys.stdout.write(text)
        return 0
    output = args.output or args.repo / "docs" / "BENCH_TRAJECTORY.md"
    output.write_text(text)
    print(f"wrote {output} ({len(samples)} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark: hot-path microbenchmarks — kernel throughput, admission
tests/sec (incremental vs naive), burst admission (batched vs
per-arrival), load-balanced burst placement (batch session vs
per-candidate probing), and sharded-ledger churn.

Tracks the perf trajectory of the paths that dominate paper-scale
wall-clock:

* **Kernel event throughput** — dispatch rate of the discrete-event heap
  (events/sec) with a self-rescheduling workload plus cancellation churn.
* **Admission test throughput** — ``admissible()`` calls/sec at 10/100/1000
  registered tasks for both the incremental :class:`AubAnalyzer` and the
  retained :class:`NaiveAubAnalyzer` reference, with ledger churn between
  tests so cache invalidation is part of the measured cost.
* **Admission-decision latency** — per-call wall-clock distribution of
  the same incremental ``admissible()`` workload through the exact
  :class:`repro.metrics.histogram.Histogram` (p50/p95/p99/max seconds);
  the regression gate guards p99 as lower-is-better.
* **Burst admission** — end-to-end admission of a burst of 64
  simultaneous arrivals (test + ledger commit + registration) through the
  per-arrival incremental path vs one ``admissible_batch`` call plus one
  ``add_batch`` commit.
* **LB burst placement** — greedy placement + admission of the same burst
  through the sequential path (per-candidate ``location()`` probe, double
  admission test, interim ledger commits) vs one
  :class:`BatchAdmissionSession` with its accepted-placement overlay.
* **Sharded ledger** — contribution add/remove churn across a
  1000-processor ledger, scalar ops vs batched ops.
* **Fault-injection overhead** — ``Network.send`` throughput with no
  fault injector vs an installed-but-idle :class:`FaultInjector`
  (``test_bench_fault_injection``); the chaos layer must cost <5% on
  the messaging hot path when no faults are declared.

Prints a table and writes ``BENCH_hotpath.json`` at the repo root so the
numbers are comparable across PRs (``benchmarks/plot_trajectory.py``
collects them into ``docs/BENCH_TRAJECTORY.md``).  Acceptance floors
asserted here: incremental admission >= 5x naive, batched burst
admission >= 3x the per-arrival incremental path, and batched placement
>= 3x per-candidate probing, all at 1000 registered tasks.

``REPRO_BENCH_HOTPATH_SCALES`` (comma-separated task counts) reduces the
grid for smoke runs; floors only apply when their scale is measured.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.core.load_balancer import LoadBalancerComponent
from repro.metrics.histogram import Histogram
from repro.net.fault import FaultInjector
from repro.net.network import Network
from repro.sched.aub import (
    AubAnalyzer,
    BatchCandidate,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
)
from repro.sched.task import Job, SubtaskSpec, TaskKind, TaskSpec
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_hotpath.json"

#: Registered-task scales for the admission benchmarks (env-reducible).
SCALES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_HOTPATH_SCALES", "10,100,1000").split(",")
)

#: Simultaneous arrivals per admission burst.
BURST = 64

#: Per-measurement wall-clock window; lengthen on noisy shared runners
#: (CI sets 1.0) so scheduling jitter cannot flake the speedup floors.
WINDOW_S = float(os.environ.get("REPRO_BENCH_HOTPATH_SECONDS", "0.4"))


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def _nodes_for(n_tasks: int):
    """A deployment sized like a large testbed: more tasks, more nodes."""
    return [f"P{i}" for i in range(max(8, n_tasks // 16))]


def _populate(analyzer_cls, n_tasks: int, seed: int = 42,
              budget_per_node: float = 0.5):
    """Build a ledger + analyzer with ``n_tasks`` registered tasks.

    Identical seeds produce identical state for both analyzer classes, so
    the two implementations face exactly the same workload.  The default
    budget loads the testbed heavily (multi-stage tasks near the
    condition bound, many probes rejected — the historical admission
    section); the burst section passes a lighter budget so bursts are
    actually admitted and the commit path is exercised.
    """
    rng = random.Random(seed)
    nodes = _nodes_for(n_tasks)
    ledger = SyntheticUtilizationLedger(nodes)
    analyzer = analyzer_cls(ledger)
    per_stage = budget_per_node * len(nodes) / (n_tasks * 3.0)
    for i in range(n_tasks):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        key = (f"T{i}", 0)
        for j, node in enumerate(visits):
            ledger.add(node, (key[0], key[1], j), per_stage)
        analyzer.register(key, visits, expiry=1e12)  # never expires in-run
    return ledger, analyzer, nodes, rng


def _measure_admission(analyzer_cls, n_tasks: int, duration_s: float = WINDOW_S):
    """admissible() calls/sec with ledger churn every 8th test."""
    ledger, analyzer, nodes, rng = _populate(analyzer_cls, n_tasks)
    # Pre-build candidate probes so RNG cost is off the clock.
    probes = []
    for i in range(256):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        contribs = {node: 0.01 for node in visits}
        probes.append((visits, contribs))
    churn_key = ("churn", 0, 0)
    churn_node = nodes[0]
    count = 0
    start = time.perf_counter()
    deadline = start + duration_s
    while time.perf_counter() < deadline:
        visits, contribs = probes[count % 256]
        analyzer.admissible(visits, contribs, now=0.0)
        count += 1
        if count % 8 == 0:
            # Ledger churn: exercise cache invalidation on the hot node.
            ledger.add(churn_node, churn_key, 0.01)
            ledger.remove(churn_node, churn_key)
    elapsed = time.perf_counter() - start
    return count / elapsed


def _measure_admission_latency(n_tasks: int, duration_s: float = WINDOW_S):
    """Wall-clock latency distribution of individual ``admissible()`` calls.

    The throughput section answers "how many per second"; this one
    answers "how long does the slowest percentile take" — the paper's
    per-decision cost claim, and what the CI regression gate guards as
    lower-is-better (``_p99_s``).  Samples feed the observability
    layer's exact :class:`~repro.metrics.histogram.Histogram`, so the
    published percentiles use the same nearest-rank extraction the
    metrics endpoint exposes.  Same workload, probes, and churn cadence
    as :func:`_measure_admission`.
    """
    ledger, analyzer, nodes, rng = _populate(AubAnalyzer, n_tasks)
    probes = []
    for i in range(256):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        contribs = {node: 0.01 for node in visits}
        probes.append((visits, contribs))
    churn_key = ("churn", 0, 0)
    churn_node = nodes[0]
    histogram = Histogram()
    count = 0
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        visits, contribs = probes[count % 256]
        t0 = time.perf_counter()
        analyzer.admissible(visits, contribs, now=0.0)
        histogram.observe(time.perf_counter() - t0)
        count += 1
        if count % 8 == 0:
            ledger.add(churn_node, churn_key, 0.01)
            ledger.remove(churn_node, churn_key)
    snapshot = histogram.snapshot()
    return {
        "samples": snapshot.count,
        "mean_s": snapshot.mean(),
        "p50_s": snapshot.quantile(0.50),
        "p95_s": snapshot.quantile(0.95),
        "p99_s": snapshot.quantile(0.99),
        "max_s": snapshot.max,
    }


# ----------------------------------------------------------------------
# Burst admission: per-arrival vs batched
# ----------------------------------------------------------------------
def _burst_candidates(nodes, rng, burst: int):
    """A burst of arrivals light enough that most are admitted (so both
    paths pay the commit + invalidation cost that dominates real bursts)."""
    candidates = []
    for i in range(burst):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        stage_contribs = [(node, 0.001) for node in visits]
        candidates.append(
            BatchCandidate(visits, stage_contribs, key=(f"B{i}", 0))
        )
    return candidates


def _undo_burst(ledger, analyzer, committed):
    """Return ledger + registry to the pre-burst state (off the clock)."""
    ledger.remove_batch(
        [(node, key) for key, entries in committed for node, key in entries]
    )
    for key, _entries in committed:
        analyzer.unregister(key)


def _admit_burst_per_arrival(ledger, analyzer, candidates):
    """The pre-batch hot path: test, commit, register — one arrival at a
    time, every commit invalidating the analyzer caches."""
    committed = []
    decisions = []
    for cand in candidates:
        ok = analyzer.admissible(cand.visits, cand.contribs, now=0.0)
        decisions.append(ok)
        if ok:
            task_id, job_index = cand.key
            entries = []
            for j, (node, value) in enumerate(cand.stage_contribs):
                contrib_key = (task_id, job_index, j)
                ledger.add(node, contrib_key, value)
                entries.append((node, contrib_key))
            analyzer.register(cand.key, list(cand.visits), expiry=1e12)
            committed.append((cand.key, entries))
    return decisions, committed


def _admit_burst_batched(ledger, analyzer, candidates):
    """The batched hot path: one admissible_batch, one add_batch commit."""
    decisions = analyzer.admissible_batch(candidates, now=0.0)
    add_entries = []
    committed = []
    for cand, ok in zip(candidates, decisions):
        if not ok:
            continue
        task_id, job_index = cand.key
        entries = []
        for j, (node, value) in enumerate(cand.stage_contribs):
            contrib_key = (task_id, job_index, j)
            add_entries.append((node, contrib_key, value))
            entries.append((node, contrib_key))
        committed.append((cand.key, entries))
    ledger.add_batch(add_entries)
    for cand, ok in zip(candidates, decisions):
        if ok:
            analyzer.register(cand.key, list(cand.visits), expiry=1e12)
    return decisions, committed


def _measure_burst(admit, n_tasks: int, duration_s: float = WINDOW_S):
    """Admission decisions/sec for repeated bursts of BURST arrivals.

    The testbed runs in the healthy-admission regime (light per-node
    budget: no task near the condition bound, bursts mostly admitted), so
    the measurement covers the full accept path — test, ledger commit,
    registration — not cheap saturation rejections.  Only the admission
    work is on the clock; the undo that restores steady state between
    bursts (and the cache refresh it necessitates) is off it.
    """
    ledger, analyzer, nodes, rng = _populate(
        AubAnalyzer, n_tasks, budget_per_node=0.2
    )
    candidates = _burst_candidates(nodes, rng, BURST)
    count = 0
    elapsed = 0.0
    decisions = None
    while elapsed < duration_s:
        start = time.perf_counter()
        decisions, committed = admit(ledger, analyzer, candidates)
        elapsed += time.perf_counter() - start
        count += len(candidates)
        _undo_burst(ledger, analyzer, committed)
        # Steady state between bursts: the undo's invalidations are not
        # part of the admission path being measured.
        analyzer._refresh_dirty()
    assert decisions and all(decisions), (
        "burst benchmark must run in the admitting regime"
    )
    return count / elapsed, decisions


# ----------------------------------------------------------------------
# LB burst placement: per-candidate probing vs batch session
# ----------------------------------------------------------------------
def _placement_jobs(nodes, rng, burst: int):
    """A burst of jobs whose stages each have a handful of eligible
    processors, light enough that placements are mostly admitted."""
    jobs = []
    for i in range(burst):
        n_stages = rng.randint(1, 3)
        subtasks = []
        for j in range(n_stages):
            eligible = rng.sample(nodes, min(4, len(nodes)))
            subtasks.append(
                SubtaskSpec(
                    index=j,
                    execution_time=0.001,
                    home=eligible[0],
                    replicas=tuple(eligible[1:]),
                )
            )
        task = TaskSpec(
            task_id=f"B{i}",
            kind=TaskKind.PERIODIC,
            deadline=1.0,
            subtasks=tuple(subtasks),
            period=1.0,
        )
        jobs.append(
            Job(
                task=task,
                index=0,
                arrival_time=0.0,
                arrival_node=subtasks[0].home,
            )
        )
    return jobs


def _place_burst_per_candidate(ledger, analyzer, lb, jobs):
    """The pre-batch LB path: greedy-plan against the live ledger, probe
    admissibility in location(), re-test in the AC's test-and-commit,
    commit per stage — every commit invalidating the analyzer caches."""
    plans = []
    committed = []
    for job in jobs:
        task = job.task
        assignment, added = lb._greedy_plan(task, ledger)
        visits = task.visited_processors(assignment)
        ok = analyzer.admissible(visits, added, now=0.0)
        if ok:
            contribs = {}
            for subtask in task.subtasks:
                node = assignment[subtask.index]
                contribs[node] = contribs.get(
                    node, 0.0
                ) + task.subtask_utilization(subtask.index)
            ok = analyzer.admissible(visits, contribs, now=0.0)
        plans.append(assignment if ok else None)
        if not ok:
            continue
        key = (task.task_id, job.index)
        entries = []
        for subtask in task.subtasks:
            contrib_key = (task.task_id, job.index, subtask.index)
            ledger.add(
                assignment[subtask.index],
                contrib_key,
                task.subtask_utilization(subtask.index),
            )
            entries.append((assignment[subtask.index], contrib_key))
        analyzer.register(key, visits, expiry=1e12)
        committed.append((key, entries))
    return plans, committed


def _place_burst_batched(ledger, analyzer, lb, jobs):
    """The batched LB path: one admission session (screened by the
    burst's worst-case demand envelope), one add_batch commit."""
    demand = {}
    for job in jobs:
        task = job.task
        for subtask in task.subtasks:
            value = task.subtask_utilization(subtask.index)
            for node in subtask.eligible:
                demand[node] = demand.get(node, 0.0) + value
    session = analyzer.batch_session(now=0.0, demand=demand)
    plans = [lb.location_in_batch(job, session) for job in jobs]
    add_entries = []
    committed = []
    for job, plan in zip(jobs, plans):
        if plan is None:
            continue
        task = job.task
        key = (task.task_id, job.index)
        entries = []
        for subtask in task.subtasks:
            contrib_key = (task.task_id, job.index, subtask.index)
            add_entries.append(
                (
                    plan[subtask.index],
                    contrib_key,
                    task.subtask_utilization(subtask.index),
                )
            )
            entries.append((plan[subtask.index], contrib_key))
        committed.append((key, entries))
    ledger.add_batch(add_entries)
    for job, plan in zip(jobs, plans):
        if plan is not None:
            task = job.task
            analyzer.register(
                (task.task_id, job.index),
                task.visited_processors(plan),
                expiry=1e12,
            )
    return plans, committed


def _measure_placement(place, n_tasks: int, duration_s: float = WINDOW_S):
    """Placements/sec for repeated load-balanced bursts of BURST jobs.

    Same regime and clock discipline as :func:`_measure_burst`: light
    budget so plans are admitted (the full plan + test + commit path is
    measured), undo off the clock."""
    ledger, analyzer, nodes, rng = _populate(
        AubAnalyzer, n_tasks, budget_per_node=0.2
    )
    lb = LoadBalancerComponent("bench-lb", None)
    jobs = _placement_jobs(nodes, rng, BURST)
    count = 0
    elapsed = 0.0
    plans = None
    while elapsed < duration_s:
        start = time.perf_counter()
        plans, committed = place(ledger, analyzer, lb, jobs)
        elapsed += time.perf_counter() - start
        count += len(jobs)
        _undo_burst(ledger, analyzer, committed)
        analyzer._refresh_dirty()
    assert plans and all(plan is not None for plan in plans), (
        "placement benchmark must run in the admitting regime"
    )
    return count / elapsed, plans


# ----------------------------------------------------------------------
# Sharded-ledger churn
# ----------------------------------------------------------------------
def _measure_ledger(batched: bool, n_nodes: int = 1000,
                    group: int = 64, duration_s: float = WINDOW_S):
    """Contribution add+remove churn (ops/sec) across a large ledger.

    Groups model the shapes batching targets — an idle-period reclaim or
    a burst commit lands many contributions on a handful of processors —
    so each group of ``group`` entries spans 8 nodes (8 entries per
    node).  Scalar mode notifies subscribers per entry; batch mode once
    per touched node.
    """
    rng = random.Random(7)
    nodes = [f"P{i}" for i in range(n_nodes)]
    ledger = SyntheticUtilizationLedger(nodes)
    # A subscriber comparable to the analyzer's invalidation listener, so
    # per-mutation notification cost is part of the measurement.
    invalidated = set()
    ledger.subscribe(invalidated.add)
    groups = []
    for g in range(97):
        group_nodes = rng.sample(nodes, 8)
        entries = [
            (group_nodes[j % 8], ("G", g, j), 0.0001) for j in range(group)
        ]
        groups.append(entries)
    count = 0
    start = time.perf_counter()
    deadline = start + duration_s
    while time.perf_counter() < deadline:
        entries = groups[count % 97]
        if batched:
            ledger.add_batch(entries)
            ledger.remove_batch([(node, key) for node, key, _v in entries])
        else:
            for node, key, value in entries:
                ledger.add(node, key, value)
            for node, key, _value in entries:
                ledger.remove(node, key)
        count += 1
    elapsed = time.perf_counter() - start
    return count * group * 2 / elapsed  # adds + removes


def _measure_kernel(n_events: int = 120_000):
    """Kernel dispatch throughput (events/sec) with rescheduling + cancels."""
    sim = Simulator()

    def tick(remaining):
        if remaining > 0:
            handle = sim.schedule(0.001, tick, remaining - 1)
            if remaining % 5 == 0:
                # Cancellation churn: dead entries must be swept cheaply.
                victim = sim.schedule(0.0005, tick, 0)
                victim.cancel()

    for lane in range(8):
        sim.schedule(lane * 0.0001, tick, n_events // 8)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed / elapsed


# ----------------------------------------------------------------------
# Fault-injection overhead on the messaging hot path
# ----------------------------------------------------------------------
#: Remote sends per timed repetition of the fault-injection benchmark
#: (env-reducible for smoke runs, like the admission scales).
FAULT_SENDS = int(os.environ.get("REPRO_BENCH_FAULT_SENDS", "30000"))


def _time_sends(idle_injector: bool, n_sends: int) -> float:
    """Seconds for ``n_sends`` remote ``Network.send`` calls (fixed work).

    The deliver callback is a no-op and the kernel drains off the clock
    afterwards, so only the send path — sampling, scheduling, and (when
    installed) the idle injector's armed check — is measured.  Both
    variants run the identical delay-model draws from the same seed.
    """
    sim = Simulator()
    network = Network(sim, random.Random(2008))
    network.add_node("P0")
    network.add_node("P1")
    if idle_injector:
        network.install_fault_injector(FaultInjector(RngRegistry(2008)))

    def on_deliver(message):
        pass

    start = time.perf_counter()
    for i in range(n_sends):
        network.send("P0", "P1", "bench", i, on_deliver)
    elapsed = time.perf_counter() - start
    sim.run()  # drain the scheduled deliveries off the clock
    return elapsed


def _measure_fault_injection(n_sends: int = FAULT_SENDS, repeats: int = 5):
    """Best-of-``repeats`` send throughput, plain vs idle injector.

    Repetitions interleave the two variants so clock-speed drift on a
    shared runner hits both equally; taking the per-variant minimum then
    discards the noisy repetitions.
    """
    plain_best = float("inf")
    idle_best = float("inf")
    for _ in range(repeats):
        plain_best = min(plain_best, _time_sends(False, n_sends))
        idle_best = min(idle_best, _time_sends(True, n_sends))
    return {
        "sends": n_sends,
        "plain_sends_per_sec": n_sends / plain_best,
        "idle_injector_sends_per_sec": n_sends / idle_best,
        "overhead_ratio": idle_best / plain_best,
    }


def test_bench_fault_injection():
    # Same measurement-purity discipline as test_bench_hotpath: the
    # sanitizer leg proves determinism, not throughput.
    saved_sanitize = os.environ.pop("REPRO_SANITIZE", None)
    try:
        fault_injection = _measure_fault_injection()
    finally:
        if saved_sanitize is not None:
            os.environ["REPRO_SANITIZE"] = saved_sanitize

    print()
    print("Fault-injection overhead (remote Network.send, fixed work)")
    print(
        f"  plain                   : "
        f"{fault_injection['plain_sends_per_sec']:,.0f} sends/sec"
    )
    print(
        f"  idle injector installed : "
        f"{fault_injection['idle_injector_sends_per_sec']:,.0f} sends/sec "
        f"({(fault_injection['overhead_ratio'] - 1.0) * 100.0:+.1f}%)"
    )

    record = {}
    if RESULT_FILE.exists():
        try:
            record = json.loads(RESULT_FILE.read_text())
        except json.JSONDecodeError:
            record = {}
    record["fault_injection"] = fault_injection
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {RESULT_FILE.name}")

    # The chaos layer's standing cost on fault-free runs: an installed
    # but idle injector may add at most 5% to the messaging hot path.
    assert fault_injection["overhead_ratio"] < 1.05, (
        "idle fault injector must add <5% overhead to Network.send, got "
        f"{(fault_injection['overhead_ratio'] - 1.0) * 100.0:+.1f}%"
    )


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def test_bench_hotpath():
    # The speedup floors compare the *production* hot paths (incremental
    # vs naive admission).  The runtime sanitizer (REPRO_SANITIZE=1)
    # deliberately turns every admissible() into a fresh recompute of the
    # incremental caches — O(registered tasks) per test — which inverts
    # exactly the asymmetry measured here.  Disarm it for the measurement
    # window only (restored below): the sanitize CI leg proves
    # determinism on the functional suite, not on throughput numbers.
    saved_sanitize = os.environ.pop("REPRO_SANITIZE", None)
    try:
        _run_bench_hotpath()
    finally:
        if saved_sanitize is not None:
            os.environ["REPRO_SANITIZE"] = saved_sanitize


def _run_bench_hotpath():
    kernel_rate = _measure_kernel()

    admission = {}
    admission_latency = {}
    admission_batch = {}
    lb_placement_batch = {}
    for n_tasks in SCALES:
        naive_rate = _measure_admission(NaiveAubAnalyzer, n_tasks)
        incremental_rate = _measure_admission(AubAnalyzer, n_tasks)
        admission[str(n_tasks)] = {
            "naive_tests_per_sec": naive_rate,
            "incremental_tests_per_sec": incremental_rate,
            "speedup": incremental_rate / naive_rate,
        }
        admission_latency[str(n_tasks)] = _measure_admission_latency(n_tasks)
        per_arrival_rate, seq_decisions = _measure_burst(
            _admit_burst_per_arrival, n_tasks
        )
        batch_rate, batch_decisions = _measure_burst(
            _admit_burst_batched, n_tasks
        )
        # The two paths must agree on every decision of the burst.
        assert batch_decisions == seq_decisions
        admission_batch[str(n_tasks)] = {
            "burst": BURST,
            "per_arrival_tests_per_sec": per_arrival_rate,
            "batch_tests_per_sec": batch_rate,
            "speedup": batch_rate / per_arrival_rate,
        }
        probe_rate, seq_plans = _measure_placement(
            _place_burst_per_candidate, n_tasks
        )
        session_rate, batch_plans = _measure_placement(
            _place_burst_batched, n_tasks
        )
        # The placement paths must agree on every plan of the burst.
        assert batch_plans == seq_plans
        lb_placement_batch[str(n_tasks)] = {
            "burst": BURST,
            "per_candidate_placements_per_sec": probe_rate,
            "batch_placements_per_sec": session_rate,
            "speedup": session_rate / probe_rate,
        }

    ledger_sharded = {
        "nodes": 1000,
        "scalar_ops_per_sec": _measure_ledger(batched=False),
        "batch_ops_per_sec": _measure_ledger(batched=True),
    }
    ledger_sharded["batch_speedup"] = (
        ledger_sharded["batch_ops_per_sec"]
        / ledger_sharded["scalar_ops_per_sec"]
    )

    print()
    print("Hot-path microbenchmarks")
    print(f"  kernel event throughput : {kernel_rate:,.0f} events/sec")
    header = f"  {'tasks':>6} | {'naive tests/s':>14} | {'incremental tests/s':>20} | {'speedup':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for n_tasks in SCALES:
        row = admission[str(n_tasks)]
        print(
            f"  {n_tasks:>6} | {row['naive_tests_per_sec']:>14,.0f} | "
            f"{row['incremental_tests_per_sec']:>20,.0f} | "
            f"{row['speedup']:>7.1f}x"
        )
    header = (
        f"  {'tasks':>6} | {'p50':>10} | {'p95':>10} | {'p99':>10} | "
        f"{'max':>10}"
    )
    print("  admission-decision latency (incremental admissible(), seconds)")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for n_tasks in SCALES:
        row = admission_latency[str(n_tasks)]
        print(
            f"  {n_tasks:>6} | {row['p50_s']:>10.2e} | {row['p95_s']:>10.2e} "
            f"| {row['p99_s']:>10.2e} | {row['max_s']:>10.2e}"
        )
    header = (
        f"  {'tasks':>6} | {'per-arrival burst/s':>20} | "
        f"{'batched burst/s':>16} | {'speedup':>8}"
    )
    print(f"  burst admission (bursts of {BURST} arrivals, commits included)")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for n_tasks in SCALES:
        row = admission_batch[str(n_tasks)]
        print(
            f"  {n_tasks:>6} | {row['per_arrival_tests_per_sec']:>20,.0f} | "
            f"{row['batch_tests_per_sec']:>16,.0f} | {row['speedup']:>7.1f}x"
        )
    header = (
        f"  {'tasks':>6} | {'per-candidate plans/s':>22} | "
        f"{'batched plans/s':>16} | {'speedup':>8}"
    )
    print(f"  LB burst placement (bursts of {BURST} jobs, commits included)")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for n_tasks in SCALES:
        row = lb_placement_batch[str(n_tasks)]
        print(
            f"  {n_tasks:>6} | "
            f"{row['per_candidate_placements_per_sec']:>22,.0f} | "
            f"{row['batch_placements_per_sec']:>16,.0f} | "
            f"{row['speedup']:>7.1f}x"
        )
    print(
        f"  sharded ledger churn    : "
        f"{ledger_sharded['scalar_ops_per_sec']:,.0f} scalar ops/s, "
        f"{ledger_sharded['batch_ops_per_sec']:,.0f} batched ops/s "
        f"({ledger_sharded['batch_speedup']:.1f}x)"
    )

    # Merge over any existing artifact so sections written by other
    # benchmarks (e.g. distributed_round) survive regardless of order.
    record = {}
    if RESULT_FILE.exists():
        try:
            record = json.loads(RESULT_FILE.read_text())
        except json.JSONDecodeError:
            record = {}
    record.update(
        {
            "kernel_events_per_sec": kernel_rate,
            "admission": admission,
            "admission_latency": admission_latency,
            "admission_batch": admission_batch,
            "lb_placement_batch": lb_placement_batch,
            "ledger_sharded": ledger_sharded,
        }
    )
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {RESULT_FILE.name}")

    if "1000" in admission:
        # Acceptance floor: the incremental engine must dominate at scale.
        assert admission["1000"]["speedup"] >= 5.0, (
            "incremental admission must be >= 5x naive at 1000 registered "
            f"tasks, got {admission['1000']['speedup']:.1f}x"
        )
        # And batching must dominate the per-arrival incremental path.
        assert admission_batch["1000"]["speedup"] >= 3.0, (
            f"burst-of-{BURST} admission must be >= 3x the per-arrival "
            f"path at 1000 registered tasks, got "
            f"{admission_batch['1000']['speedup']:.1f}x"
        )
        # Batch placement must dominate per-candidate location() probing.
        assert lb_placement_batch["1000"]["speedup"] >= 3.0, (
            f"burst-of-{BURST} placement must be >= 3x per-candidate "
            f"probing at 1000 registered tasks, got "
            f"{lb_placement_batch['1000']['speedup']:.1f}x"
        )
    if "10" in admission:
        # Sanity: never slower even at small scale.
        assert admission["10"]["speedup"] > 0.8
    # Batched ledger mutation should never lose to scalar mutation.
    assert ledger_sharded["batch_speedup"] > 0.9

"""Benchmark: hot-path microbenchmarks — kernel throughput and admission
tests/sec, incremental vs naive.

Tracks the perf trajectory of the two paths that dominate paper-scale
wall-clock:

* **Kernel event throughput** — dispatch rate of the discrete-event heap
  (events/sec) with a self-rescheduling workload plus cancellation churn.
* **Admission test throughput** — ``admissible()`` calls/sec at 10/100/1000
  registered tasks for both the incremental :class:`AubAnalyzer` and the
  retained :class:`NaiveAubAnalyzer` reference, with ledger churn between
  tests so cache invalidation is part of the measured cost.

Prints a table and writes ``BENCH_hotpath.json`` at the repo root so the
numbers are comparable across PRs.  The acceptance floor asserted here:
incremental admission must be at least 5x the naive path at 1000
registered tasks.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.sched.aub import (
    AubAnalyzer,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
)
from repro.sim.kernel import Simulator

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_FILE = REPO_ROOT / "BENCH_hotpath.json"

#: Registered-task scales for the admission benchmark.
SCALES = (10, 100, 1000)

#: Per-measurement wall-clock window; lengthen on noisy shared runners
#: (CI sets 1.0) so scheduling jitter cannot flake the speedup floor.
WINDOW_S = float(os.environ.get("REPRO_BENCH_HOTPATH_SECONDS", "0.4"))


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def _nodes_for(n_tasks: int):
    """A deployment sized like a large testbed: more tasks, more nodes."""
    return [f"P{i}" for i in range(max(8, n_tasks // 16))]


def _populate(analyzer_cls, n_tasks: int, seed: int = 42):
    """Build a ledger + analyzer with ``n_tasks`` registered tasks.

    Identical seeds produce identical state for both analyzer classes, so
    the two implementations face exactly the same workload.
    """
    rng = random.Random(seed)
    nodes = _nodes_for(n_tasks)
    ledger = SyntheticUtilizationLedger(nodes)
    analyzer = analyzer_cls(ledger)
    budget_per_node = 0.5  # keep well below saturation so tests do work
    per_stage = budget_per_node * len(nodes) / (n_tasks * 3.0)
    for i in range(n_tasks):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        key = (f"T{i}", 0)
        for j, node in enumerate(visits):
            ledger.add(node, (key[0], key[1], j), per_stage)
        analyzer.register(key, visits, expiry=1e12)  # never expires in-run
    return ledger, analyzer, nodes, rng


def _measure_admission(analyzer_cls, n_tasks: int, duration_s: float = WINDOW_S):
    """admissible() calls/sec with ledger churn every 8th test."""
    ledger, analyzer, nodes, rng = _populate(analyzer_cls, n_tasks)
    # Pre-build candidate probes so RNG cost is off the clock.
    probes = []
    for i in range(256):
        n_stages = rng.randint(1, 3)
        visits = rng.sample(nodes, n_stages)
        contribs = {node: 0.01 for node in visits}
        probes.append((visits, contribs))
    churn_key = ("churn", 0, 0)
    churn_node = nodes[0]
    count = 0
    start = time.perf_counter()
    deadline = start + duration_s
    while time.perf_counter() < deadline:
        visits, contribs = probes[count % 256]
        analyzer.admissible(visits, contribs, now=0.0)
        count += 1
        if count % 8 == 0:
            # Ledger churn: exercise cache invalidation on the hot node.
            ledger.add(churn_node, churn_key, 0.01)
            ledger.remove(churn_node, churn_key)
    elapsed = time.perf_counter() - start
    return count / elapsed


def _measure_kernel(n_events: int = 120_000):
    """Kernel dispatch throughput (events/sec) with rescheduling + cancels."""
    sim = Simulator()

    def tick(remaining):
        if remaining > 0:
            handle = sim.schedule(0.001, tick, remaining - 1)
            if remaining % 5 == 0:
                # Cancellation churn: dead entries must be swept cheaply.
                victim = sim.schedule(0.0005, tick, 0)
                victim.cancel()

    for lane in range(8):
        sim.schedule(lane * 0.0001, tick, n_events // 8)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_executed / elapsed


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def test_bench_hotpath():
    kernel_rate = _measure_kernel()

    admission = {}
    for n_tasks in SCALES:
        naive_rate = _measure_admission(NaiveAubAnalyzer, n_tasks)
        incremental_rate = _measure_admission(AubAnalyzer, n_tasks)
        admission[str(n_tasks)] = {
            "naive_tests_per_sec": naive_rate,
            "incremental_tests_per_sec": incremental_rate,
            "speedup": incremental_rate / naive_rate,
        }

    print()
    print("Hot-path microbenchmarks")
    print(f"  kernel event throughput : {kernel_rate:,.0f} events/sec")
    header = f"  {'tasks':>6} | {'naive tests/s':>14} | {'incremental tests/s':>20} | {'speedup':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for n_tasks in SCALES:
        row = admission[str(n_tasks)]
        print(
            f"  {n_tasks:>6} | {row['naive_tests_per_sec']:>14,.0f} | "
            f"{row['incremental_tests_per_sec']:>20,.0f} | "
            f"{row['speedup']:>7.1f}x"
        )

    RESULT_FILE.write_text(
        json.dumps(
            {
                "kernel_events_per_sec": kernel_rate,
                "admission": admission,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"  wrote {RESULT_FILE.name}")

    # Acceptance floor: the incremental engine must dominate at scale.
    assert admission["1000"]["speedup"] >= 5.0, (
        "incremental admission must be >= 5x naive at 1000 registered "
        f"tasks, got {admission['1000']['speedup']:.1f}x"
    )
    # Sanity: it should never be slower even at small scale.
    assert admission["10"]["speedup"] > 0.8

"""Benchmark: Figure 8 — service component overheads (microseconds).

Regenerates the paper's overhead table (section 7.3) and asserts:

* every row lands within 25% of the paper's mean (the cost model is
  calibrated, the *composition* is what's being validated);
* every service delay stays below 2 ms (the paper's headline claim);
* the AC-side part of idle resetting is tiny compared to the
  off-critical-path part.

Also micro-benchmarks the *real* Python execution time of the AUB
admission test, validating the paper's scalability argument that "the
computation time of the schedulability analysis is significantly lower
than task execution times".
"""

import random

import pytest

from repro.experiments import run_figure8
from repro.metrics.overhead import PAPER_FIGURE8_USEC
from repro.sched.aub import AubAnalyzer, SyntheticUtilizationLedger

from conftest import bench_duration


@pytest.fixture(scope="module")
def figure8_result():
    return run_figure8(duration=max(60.0, bench_duration()), seed=2008)


def test_bench_figure8_table(benchmark, figure8_result):
    benchmark(lambda: run_figure8(duration=20.0, seed=2008))
    result = figure8_result
    print()
    print(result.format())
    for row in result.rows:
        paper_mean, _ = PAPER_FIGURE8_USEC[row.name]
        assert row.mean_usec == pytest.approx(paper_mean, rel=0.25), row.name
    assert result.max_service_delay_usec() < 2000.0
    ir_ac = result.row("ir_ac_side")
    ir_other = result.row("ir_other_part")
    assert ir_ac.mean_usec * 10 < ir_other.mean_usec


def test_bench_aub_admission_test_speed(benchmark):
    """Real wall-clock cost of one AUB admission test with a loaded system
    (40 registered end-to-end tasks over 5 processors)."""
    nodes = [f"app{i}" for i in range(1, 6)]
    ledger = SyntheticUtilizationLedger(nodes)
    analyzer = AubAnalyzer(ledger)
    rng = random.Random(7)
    for i in range(40):
        visits = rng.sample(nodes, rng.randint(1, 4))
        for j, node in enumerate(visits):
            ledger.add(node, (f"T{i}", 0, j), 0.005)
        analyzer.register((f"T{i}", 0), visits, None)
    candidate_visits = ["app1", "app2", "app3"]
    contribs = {"app1": 0.02, "app2": 0.02, "app3": 0.02}

    result = benchmark(
        lambda: analyzer.admissible(candidate_visits, contribs, now=0.0)
    )
    assert result is True
    # The paper's argument holds if a test takes far less than typical
    # subtask execution times (tens of ms): require < 1 ms in Python.
    assert benchmark.stats["mean"] < 1e-3
